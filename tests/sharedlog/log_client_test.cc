#include "src/sharedlog/log_client.h"

#include <gtest/gtest.h>

#include "src/common/latency_model.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"

namespace halfmoon::sharedlog {
namespace {

struct ClientFixture {
  sim::Scheduler scheduler;
  Rng rng{7};
  LatencyModels models;
  LogSpace space;
  LogClient client{&scheduler, &rng, &models, &space, nullptr, nullptr};

  // Second client on another "node" sharing the space but with its own index replica.
  LogClient other{&scheduler, &rng, &models, &space, nullptr, nullptr};
};

FieldMap Fields(const std::string& op) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", 0);
  return f;
}

TEST(LogClientTest, AppendTakesCalibratedTime) {
  ClientFixture fx;
  SeqNum seq = 0;
  fx.scheduler.Spawn([](ClientFixture* fx, SeqNum* out) -> sim::Task<void> {
    *out = co_await fx->client.Append(OneTag("t"), Fields("a"));
  }(&fx, &seq));
  fx.scheduler.Run();
  EXPECT_GT(seq, 0u);
  // One append should take on the order of the calibrated 1.18 ms median.
  EXPECT_GT(fx.scheduler.Now(), Microseconds(300));
  EXPECT_LT(fx.scheduler.Now(), Milliseconds(10));
}

TEST(LogClientTest, AppenderIndexCoversItsOwnRecords) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    SeqNum seq = co_await fx->client.Append(OneTag("t"), Fields("a"));
    EXPECT_GE(fx->client.indexed_upto(), seq);
    EXPECT_LT(fx->other.indexed_upto(), seq);  // No propagation wired in this fixture.
  }(&fx));
  fx.scheduler.Run();
}

TEST(LogClientTest, CachedReadPrevIsFast) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    SeqNum seq = co_await fx->client.Append(OneTag("t"), Fields("a"));
    SimTime before = fx->scheduler.Now();
    auto rec = co_await fx->client.ReadPrev("t", seq);
    SimTime elapsed = fx->scheduler.Now() - before;
    EXPECT_TRUE(rec != nullptr);
    if (rec == nullptr) co_return;
    EXPECT_LT(elapsed, Milliseconds(2));  // Cached path, ~0.12 ms median.
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().read_prev_cached, 1);
  EXPECT_EQ(fx.client.stats().read_prev_uncached, 0);
}

TEST(LogClientTest, StaleReplicaTakesUncachedPathAndSyncs) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    SeqNum seq = co_await fx->client.Append(OneTag("t"), Fields("a"));
    // `other` has not heard about the record: its read must sync.
    auto rec = co_await fx->other.ReadPrev("t", seq);
    EXPECT_TRUE(rec != nullptr);
    if (rec == nullptr) co_return;
    EXPECT_EQ(rec->seqnum, seq);
    EXPECT_GE(fx->other.indexed_upto(), seq);
    // Second read of the same prefix is now cached.
    co_await fx->other.ReadPrev("t", seq);
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.other.stats().read_prev_uncached, 1);
  EXPECT_EQ(fx.other.stats().read_prev_cached, 1);
}

TEST(LogClientTest, CondAppendDetectsStaleOffsets) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    CondAppendResult first = co_await fx->client.CondAppend(OneTag("s"), Fields("init"),
                                                            "s", 0);
    EXPECT_TRUE(first.ok);
    CondAppendResult second = co_await fx->other.CondAppend(OneTag("s"), Fields("init"),
                                                            "s", 0);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(second.existing_seqnum, first.seqnum);
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.other.stats().cond_append_conflicts, 1);
}

TEST(LogClientTest, CondAppendBatchCostsOneRound) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    TagId s = fx->client.tags().Intern("s");
    TagId kx = fx->client.tags().Intern("k:x");
    std::vector<LogSpace::BatchEntry> batch(2);
    batch[0].tags = OneTag(s);
    batch[0].fields = Fields("write-pre");
    batch[1].tags = TwoTags(s, kx);
    batch[1].fields = Fields("write");
    SimTime before = fx->scheduler.Now();
    CondAppendResult r = co_await fx->client.CondAppendBatch(std::move(batch), s, 0);
    SimTime elapsed = fx->scheduler.Now() - before;
    EXPECT_TRUE(r.ok);
    EXPECT_LT(elapsed, Milliseconds(5));  // ~ one append latency, not two.
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().cond_appends, 2);  // Two records, one round.
}

TEST(LogClientTest, ReadStreamServesLocalIndexReplicaView) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    co_await fx->client.Append(OneTag("s"), Fields("a"));
    co_await fx->client.Append(OneTag("s"), Fields("b"));
    // The appender's replica covers its own records.
    std::vector<LogRecordPtr> own = co_await fx->client.ReadStream("s");
    EXPECT_EQ(own.size(), 2u);
    // A node whose replica has not caught up sees a (safe) prefix — here, nothing.
    std::vector<LogRecordPtr> stale = co_await fx->other.ReadStream("s");
    EXPECT_TRUE(stale.empty());
    // After the index propagates (modeled by AdvanceIndex), the stream is visible.
    fx->other.AdvanceIndex(fx->client.indexed_upto());
    std::vector<LogRecordPtr> fresh = co_await fx->other.ReadStream("s");
    EXPECT_EQ(fresh.size(), 2u);
  }(&fx));
  fx.scheduler.Run();
}

TEST(LogClientTest, TrimRemovesRecords) {
  ClientFixture fx;
  fx.scheduler.Spawn([](ClientFixture* fx) -> sim::Task<void> {
    co_await fx->client.Append(OneTag("s"), Fields("a"));
    co_await fx->client.Trim("s", kMaxSeqNum);
    std::vector<LogRecordPtr> stream = co_await fx->client.ReadStream("s");
    EXPECT_TRUE(stream.empty());
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().trims, 1);
}

// Fixture with the node-local payload cache on (requires the sharded-cluster constructor).
struct CachedClientFixture {
  sim::Scheduler scheduler;
  Rng rng{7};
  LatencyModels models;
  ShardedLog log{1};
  LogClient client{&scheduler,
                   &rng,
                   &models,
                   &log,
                   {},
                   nullptr,
                   AppendBatchConfig{.enabled = false},
                   /*read_cache=*/true};
};

TEST(LogClientReadCacheTest, TrimDuringCacheHitDelayFailsClosed) {
  // Regression test for the stale-cache-across-Trim bug: a cache-hit ReadPrev validates,
  // suspends for its hit latency, and a Trim releases the cached record mid-delay. Serving
  // the cached payload would resurrect trimmed data; the read must fail closed (re-read,
  // which now finds nothing) and drop the entry.
  CachedClientFixture fx;
  TagId tag = fx.client.tags().Intern("t");
  SeqNum seq = 0;
  fx.scheduler.Spawn([](CachedClientFixture* fx, TagId tag, SeqNum* out) -> sim::Task<void> {
    *out = co_await fx->client.Append(std::vector<TagId>(1, tag), Fields("a"));
  }(&fx, tag, &seq));
  fx.scheduler.Run();
  ASSERT_GT(seq, 0u);  // The appended record is now cached (CacheCommitted).

  LogRecordPtr result;
  bool done = false;
  fx.scheduler.Spawn(
      [](CachedClientFixture* fx, TagId tag, SeqNum seq, LogRecordPtr* out,
         bool* done) -> sim::Task<void> {
        *out = co_await fx->client.ReadPrev(tag, seq);
        *done = true;
      }(&fx, tag, seq, &result, &done));
  // Fires while the read is suspended in the cache-hit delay (the trim is synchronous state
  // mutation, as when another node's GC scan releases the records).
  fx.scheduler.Post(SimDuration{0}, [&fx, tag, seq] {
    fx.log.Trim(fx.scheduler.Now(), tag, seq);
  });
  fx.scheduler.Run();

  EXPECT_TRUE(done);
  EXPECT_EQ(result, nullptr);  // Fail-closed: the trimmed payload is NOT served.
  EXPECT_EQ(fx.client.stats().cache_hits, 1);
  EXPECT_EQ(fx.client.stats().read_cache_stale_invalidations, 1);
}

TEST(LogClientReadCacheTest, UntrimmedCacheHitStillServesAndCountsNoInvalidation) {
  CachedClientFixture fx;
  TagId tag = fx.client.tags().Intern("t");
  fx.scheduler.Spawn([](CachedClientFixture* fx, TagId tag) -> sim::Task<void> {
    SeqNum seq = co_await fx->client.Append(std::vector<TagId>(1, tag), Fields("a"));
    LogRecordPtr record = co_await fx->client.ReadPrev(tag, seq);
    EXPECT_NE(record, nullptr);
    if (record == nullptr) co_return;
    EXPECT_EQ(record->seqnum, seq);
  }(&fx, tag));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().cache_hits, 1);
  EXPECT_EQ(fx.client.stats().read_cache_stale_invalidations, 0);
}

TEST(LogClientReadCacheTest, OwnTrimEvictsTheCachedRecord) {
  // The client's own Trim drops its cache entry up front, so no stale validation is needed
  // on the next read.
  CachedClientFixture fx;
  TagId tag = fx.client.tags().Intern("t");
  fx.scheduler.Spawn([](CachedClientFixture* fx, TagId tag) -> sim::Task<void> {
    SeqNum seq = co_await fx->client.Append(std::vector<TagId>(1, tag), Fields("a"));
    co_await fx->client.Trim(tag, seq);
    LogRecordPtr record = co_await fx->client.ReadPrev(tag, seq);
    EXPECT_EQ(record, nullptr);
  }(&fx, tag));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().cache_hits, 0);
  EXPECT_EQ(fx.client.stats().read_cache_stale_invalidations, 0);
}

}  // namespace
}  // namespace halfmoon::sharedlog
