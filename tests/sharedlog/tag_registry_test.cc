#include "src/sharedlog/tag_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace halfmoon::sharedlog {
namespace {

TEST(TagRegistryTest, InternIsIdempotent) {
  TagRegistry reg;
  TagId a = reg.Intern("stream-a");
  EXPECT_EQ(reg.Intern("stream-a"), a);
  EXPECT_EQ(reg.Intern("stream-a"), a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.intern_requests(), 3);
}

TEST(TagRegistryTest, IdsAreDenseInInterningOrder) {
  TagRegistry reg;
  EXPECT_EQ(reg.Intern("a"), 0u);
  EXPECT_EQ(reg.Intern("b"), 1u);
  EXPECT_EQ(reg.Intern("c"), 2u);
  EXPECT_EQ(reg.Name(1), "b");
  EXPECT_TRUE(reg.Contains(2));
  EXPECT_FALSE(reg.Contains(3));
}

TEST(TagRegistryTest, InternPrefixedEqualsInternOfConcatenation) {
  TagRegistry reg;
  // Whichever spelling interns first, the other must resolve to the same id.
  TagId split_first = reg.InternPrefixed("k:", "alpha");
  EXPECT_EQ(reg.Intern("k:alpha"), split_first);
  TagId whole_first = reg.Intern("k:beta");
  EXPECT_EQ(reg.InternPrefixed("k:", "beta"), whole_first);
  EXPECT_EQ(reg.size(), 2u);
  // Empty prefix and empty suffix degenerate to plain Intern.
  EXPECT_EQ(reg.InternPrefixed("", "k:alpha"), split_first);
  EXPECT_EQ(reg.InternPrefixed("k:alpha", ""), split_first);
}

TEST(TagRegistryTest, FindNeverGrowsTheRegistry) {
  TagRegistry reg;
  TagId a = reg.Intern("present");
  EXPECT_EQ(reg.Find("present"), a);
  EXPECT_EQ(reg.Find("absent"), kInvalidTagId);
  EXPECT_EQ(reg.FindPrefixed("pre", "sent"), a);
  EXPECT_EQ(reg.FindPrefixed("ab", "sent"), kInvalidTagId);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TagRegistryTest, RepeatedInterningMaterializesEachNameOnce) {
  // The steady-state claim: size() stays flat while intern_requests() grows, i.e. a hot
  // append loop never re-allocates or re-registers a known tag name.
  TagRegistry reg;
  const std::string keys[] = {"k:x", "k:y", "k:z"};
  for (int round = 0; round < 1000; ++round) {
    for (const std::string& key : keys) {
      reg.InternPrefixed("", key);
    }
  }
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.intern_requests(), 3000);
}

TEST(TagRegistryTest, PrefixRangeMatchesNaiveStringFilter) {
  TagRegistry reg;
  // Include names that straddle the prefix boundary in byte order: "k" < "k:" < "k:..." <
  // "k;..." — the range scan must include exactly the middle band.
  const char* names[] = {"a",    "k",      "k:",      "k:a", "k:a/b", "k:z",
                         "k;no", "switch", "ssf.init", "zz",  "k:mm"};
  for (const char* name : names) reg.Intern(name);

  for (const std::string prefix : {"k:", "k", "", "switch:", "zz", "nothing"}) {
    std::vector<TagId> naive;
    for (TagId id = 0; id < reg.size(); ++id) {
      if (reg.Name(id).compare(0, prefix.size(), prefix) == 0) naive.push_back(id);
    }
    std::sort(naive.begin(), naive.end(), [&](TagId a, TagId b) {
      return reg.Name(a) < reg.Name(b);
    });
    EXPECT_EQ(reg.IdsWithPrefix(prefix), naive) << "prefix \"" << prefix << "\"";
  }
}

TEST(TagRegistryTest, NameViewsStayStableAcrossGrowth) {
  // Returned name references must survive arbitrary later interning (rehash of the name map).
  TagRegistry reg;
  TagId first = reg.Intern("stable");
  const std::string* before = &reg.Name(first);
  for (int i = 0; i < 10000; ++i) {
    reg.Intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(&reg.Name(first), before);
  EXPECT_EQ(reg.Name(first), "stable");
}

}  // namespace
}  // namespace halfmoon::sharedlog
