#include "src/sharedlog/tag_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace halfmoon::sharedlog {
namespace {

TEST(TagRegistryTest, InternIsIdempotent) {
  TagRegistry reg;
  TagId a = reg.Intern("stream-a");
  EXPECT_EQ(reg.Intern("stream-a"), a);
  EXPECT_EQ(reg.Intern("stream-a"), a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.intern_requests(), 3);
}

TEST(TagRegistryTest, IdsAreDenseInInterningOrder) {
  TagRegistry reg;
  EXPECT_EQ(reg.Intern("a"), 0u);
  EXPECT_EQ(reg.Intern("b"), 1u);
  EXPECT_EQ(reg.Intern("c"), 2u);
  EXPECT_EQ(reg.Name(1), "b");
  EXPECT_TRUE(reg.Contains(2));
  EXPECT_FALSE(reg.Contains(3));
}

TEST(TagRegistryTest, InternPrefixedEqualsInternOfConcatenation) {
  TagRegistry reg;
  // Whichever spelling interns first, the other must resolve to the same id.
  TagId split_first = reg.InternPrefixed("k:", "alpha");
  EXPECT_EQ(reg.Intern("k:alpha"), split_first);
  TagId whole_first = reg.Intern("k:beta");
  EXPECT_EQ(reg.InternPrefixed("k:", "beta"), whole_first);
  EXPECT_EQ(reg.size(), 2u);
  // Empty prefix and empty suffix degenerate to plain Intern.
  EXPECT_EQ(reg.InternPrefixed("", "k:alpha"), split_first);
  EXPECT_EQ(reg.InternPrefixed("k:alpha", ""), split_first);
}

TEST(TagRegistryTest, FindNeverGrowsTheRegistry) {
  TagRegistry reg;
  TagId a = reg.Intern("present");
  EXPECT_EQ(reg.Find("present"), a);
  EXPECT_EQ(reg.Find("absent"), kInvalidTagId);
  EXPECT_EQ(reg.FindPrefixed("pre", "sent"), a);
  EXPECT_EQ(reg.FindPrefixed("ab", "sent"), kInvalidTagId);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TagRegistryTest, RepeatedInterningMaterializesEachNameOnce) {
  // The steady-state claim: size() stays flat while intern_requests() grows, i.e. a hot
  // append loop never re-allocates or re-registers a known tag name.
  TagRegistry reg;
  const std::string keys[] = {"k:x", "k:y", "k:z"};
  for (int round = 0; round < 1000; ++round) {
    for (const std::string& key : keys) {
      reg.InternPrefixed("", key);
    }
  }
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.intern_requests(), 3000);
}

TEST(TagRegistryTest, PrefixRangeMatchesNaiveStringFilter) {
  TagRegistry reg;
  // Include names that straddle the prefix boundary in byte order: "k" < "k:" < "k:..." <
  // "k;..." — the range scan must include exactly the middle band.
  const char* names[] = {"a",    "k",      "k:",      "k:a", "k:a/b", "k:z",
                         "k;no", "switch", "ssf.init", "zz",  "k:mm"};
  for (const char* name : names) reg.Intern(name);

  for (const std::string prefix : {"k:", "k", "", "switch:", "zz", "nothing"}) {
    std::vector<TagId> naive;
    for (TagId id = 0; id < reg.size(); ++id) {
      if (reg.Name(id).compare(0, prefix.size(), prefix) == 0) naive.push_back(id);
    }
    std::sort(naive.begin(), naive.end(), [&](TagId a, TagId b) {
      return reg.Name(a) < reg.Name(b);
    });
    EXPECT_EQ(reg.IdsWithPrefix(prefix), naive) << "prefix \"" << prefix << "\"";
  }
}

TEST(TagRegistryTest, NameViewsStayStableAcrossGrowth) {
  // Returned name references must survive arbitrary later interning (rehash of the name map).
  TagRegistry reg;
  TagId first = reg.Intern("stable");
  const std::string* before = &reg.Name(first);
  for (int i = 0; i < 10000; ++i) {
    reg.Intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(&reg.Name(first), before);
  EXPECT_EQ(reg.Name(first), "stable");
}

TEST(TagRegistryTest, InternPrefixedStaysStableAcrossRehashMidStream) {
  // Drive the open-addressed table through several growths (it grows at 2/3 load from 64
  // slots) while interleaving InternPrefixed and Intern of the same logical names. Ids
  // assigned before a rehash must resolve identically after it, no matter which entry point
  // is used, and the ordered prefix index must keep enumerating every id exactly once.
  TagRegistry reg;
  std::vector<TagId> prefixed_ids;
  std::vector<TagId> plain_ids;
  constexpr int kCount = 2000;  // >> 64 * (2/3)^k for several k: forces rehashes mid-stream.
  for (int i = 0; i < kCount; ++i) {
    std::string suffix = "key-" + std::to_string(i);
    prefixed_ids.push_back(reg.InternPrefixed("k:", suffix));
    plain_ids.push_back(reg.Intern("plain-" + std::to_string(i)));
    // Re-probe a name interned long before the most recent growth: both entry points must
    // find the pre-rehash id, and the finalized-hash collision handling must not confuse
    // "k:" + suffix with the identical concatenated whole name.
    int probe = i / 2;
    std::string old_suffix = "key-" + std::to_string(probe);
    EXPECT_EQ(reg.InternPrefixed("k:", old_suffix), prefixed_ids[probe]);
    EXPECT_EQ(reg.Intern("k:" + old_suffix), prefixed_ids[probe]);
    EXPECT_EQ(reg.Find("k:" + old_suffix), prefixed_ids[probe]);
    EXPECT_EQ(reg.FindPrefixed("k:", old_suffix), prefixed_ids[probe]);
  }
  EXPECT_EQ(reg.size(), static_cast<size_t>(2 * kCount));

  // Every id still maps to its original name (dense id → name survives all growths).
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(reg.Name(prefixed_ids[i]), "k:key-" + std::to_string(i));
    EXPECT_EQ(reg.Name(plain_ids[i]), "plain-" + std::to_string(i));
  }

  // The ordered prefix index enumerates exactly the prefixed ids, each exactly once.
  std::vector<TagId> scanned = reg.IdsWithPrefix("k:");
  ASSERT_EQ(scanned.size(), prefixed_ids.size());
  std::vector<TagId> expected = prefixed_ids;
  std::sort(expected.begin(), expected.end());
  std::vector<TagId> got = scanned;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace halfmoon::sharedlog
