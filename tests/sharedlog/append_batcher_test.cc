// Tests for node-local group commit (AppendBatcher): batched-vs-unbatched equivalence,
// in-round conflict resolution, window batching, and occupancy accounting.

#include "src/sharedlog/append_batcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/env.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_space.h"
#include "src/sim/scheduler.h"

namespace halfmoon::sharedlog {
namespace {

// A mini-cluster of `nodes` LogClients sharing one LogSpace, with group commit configurable
// per fixture. The scheduler is declared first so clients (and their batcher round loops)
// are destroyed before the scheduler tears down any still-suspended detached frames.
struct BatchFixture {
  explicit BatchFixture(AppendBatchConfig batch, int nodes = 2, uint64_t seed = 7)
      : rng(seed) {
    for (int i = 0; i < nodes; ++i) {
      clients.push_back(std::make_unique<LogClient>(&scheduler, &rng, &models, &space,
                                                    nullptr, nullptr, batch));
    }
  }

  sim::Scheduler scheduler;
  Rng rng;
  LatencyModels models;
  LogSpace space;
  std::vector<std::unique_ptr<LogClient>> clients;
};

FieldMap Payload(const std::string& value) {
  FieldMap f;
  f.SetStr("v", value);
  return f;
}

// ---- Randomized batched-vs-unbatched equivalence -------------------------------------------
//
// W workers across two nodes each run a per-worker-seeded random program of appends,
// cond-appends, and batched cond-appends against their own stream tag (single writer per
// cond stream: the expected offset is the worker's own success count, so every verdict is
// deterministic) plus a shared tag written by everyone. The batched and unbatched runs must
// produce identical per-worker record sequences, identical verdicts, and the same multiset
// of shared-tag payloads — only timing and seqnum assignment may differ.

struct WorkerTrace {
  std::vector<std::string> own_payloads;  // Payloads on the worker's stream, in order.
  std::vector<bool> verdicts;             // ok flag per cond-append issued.
};

struct RunResult {
  std::vector<WorkerTrace> workers;
  std::vector<std::string> shared_payloads_sorted;
  // Fingerprint of the full log content ordered by seqnum — used by the same-seed
  // determinism check, where even seqnum assignment must be identical.
  std::vector<std::string> log_by_seqnum;
  SimTime end_time = 0;
  int64_t append_rounds = 0;
  int64_t batched_requests = 0;
  int64_t rounds_overlapped = 0;
  int64_t max_inflight = 0;
};

sim::Task<void> WorkerProgram(LogClient* client, TagId own, TagId shared, uint64_t seed,
                              int ops, WorkerTrace* trace) {
  // The program is driven by a private rng keyed on the worker seed, so the op sequence is
  // identical across batched and unbatched runs regardless of timing.
  Rng program(seed);
  size_t own_len = 0;  // Successful records on `own` so far == next expected offset.
  for (int i = 0; i < ops; ++i) {
    std::string value = "w" + std::to_string(seed) + "." + std::to_string(i);
    switch (program.UniformInt(0, 2)) {
      case 0: {  // Unconditional append to own + shared stream.
        co_await client->Append(TwoTags(own, shared), Payload(value));
        trace->own_payloads.push_back(value);
        ++own_len;
        break;
      }
      case 1: {  // Single-writer cond-append: always lands at the expected offset.
        CondAppendResult r =
            co_await client->CondAppend(OneTag(own), Payload(value), own, own_len);
        trace->verdicts.push_back(r.ok);
        if (r.ok) {
          trace->own_payloads.push_back(value);
          ++own_len;
        }
        break;
      }
      default: {  // Batched cond-append: two records, atomic, consecutive offsets.
        std::vector<LogSpace::BatchEntry> batch(2);
        batch[0].tags = OneTag(own);
        batch[0].fields = Payload(value + "a");
        batch[1].tags = TwoTags(own, shared);
        batch[1].fields = Payload(value + "b");
        CondAppendResult r =
            co_await client->CondAppendBatch(std::move(batch), own, own_len);
        trace->verdicts.push_back(r.ok);
        if (r.ok) {
          trace->own_payloads.push_back(value + "a");
          trace->own_payloads.push_back(value + "b");
          own_len += 2;
        }
        break;
      }
    }
  }
}

RunResult RunWorkload(AppendBatchConfig batch, uint64_t seed, int workers_per_node,
                      int ops_per_worker) {
  BatchFixture fx(batch, /*nodes=*/2, seed);
  TagId shared = fx.space.tags().Intern("shared");
  int total_workers = 2 * workers_per_node;
  RunResult result;
  result.workers.resize(total_workers);
  for (int w = 0; w < total_workers; ++w) {
    TagId own = fx.space.tags().Intern("worker:" + std::to_string(w));
    fx.scheduler.Spawn(WorkerProgram(fx.clients[w % 2].get(), own, shared,
                                     /*seed=*/1000 + w, ops_per_worker,
                                     &result.workers[w]));
  }
  fx.scheduler.Run();
  for (const LogRecordPtr& record : fx.space.ReadStreamUpTo(shared, kMaxSeqNum)) {
    result.shared_payloads_sorted.push_back(record->fields.GetStr("v"));
  }
  std::sort(result.shared_payloads_sorted.begin(), result.shared_payloads_sorted.end());
  for (SeqNum s = 1; s < fx.space.next_seqnum(); ++s) {
    LogRecordPtr record = fx.space.Get(s);
    if (record != nullptr) result.log_by_seqnum.push_back(record->fields.GetStr("v"));
  }
  result.end_time = fx.scheduler.Now();
  for (const auto& client : fx.clients) {
    result.append_rounds += client->stats().append_rounds;
    result.batched_requests += client->stats().batched_requests;
    result.rounds_overlapped += client->stats().pipeline_rounds_overlapped;
    result.max_inflight =
        std::max(result.max_inflight, client->stats().pipeline_max_inflight);
  }
  return result;
}

TEST(AppendBatcherTest, BatchedMatchesUnbatchedContent) {
  for (uint64_t seed : {1u, 13u, 977u}) {
    RunResult batched =
        RunWorkload(AppendBatchConfig{.enabled = true}, seed, /*workers_per_node=*/6,
                    /*ops_per_worker=*/12);
    RunResult reference =
        RunWorkload(AppendBatchConfig{.enabled = false}, seed, /*workers_per_node=*/6,
                    /*ops_per_worker=*/12);
    ASSERT_EQ(batched.workers.size(), reference.workers.size());
    for (size_t w = 0; w < batched.workers.size(); ++w) {
      EXPECT_EQ(batched.workers[w].own_payloads, reference.workers[w].own_payloads)
          << "worker " << w << " seed " << seed;
      EXPECT_EQ(batched.workers[w].verdicts, reference.workers[w].verdicts)
          << "worker " << w << " seed " << seed;
    }
    EXPECT_EQ(batched.shared_payloads_sorted, reference.shared_payloads_sorted);
    EXPECT_EQ(batched.log_by_seqnum.size(), reference.log_by_seqnum.size());
    // Batching actually kicked in: fewer sequencer rounds than requests.
    EXPECT_GT(batched.batched_requests, batched.append_rounds);
    EXPECT_EQ(reference.append_rounds, 0);
  }
}

TEST(AppendBatcherTest, BatchedRunsAreBitIdenticalAcrossRepeats) {
  RunResult first = RunWorkload(AppendBatchConfig{.enabled = true}, 42, 4, 10);
  RunResult second = RunWorkload(AppendBatchConfig{.enabled = true}, 42, 4, 10);
  EXPECT_EQ(first.end_time, second.end_time);
  EXPECT_EQ(first.log_by_seqnum, second.log_by_seqnum);  // Same content at the same seqnums.
  EXPECT_EQ(first.append_rounds, second.append_rounds);
  EXPECT_EQ(first.batched_requests, second.batched_requests);
}

// Two cond-appends with the same condition landing in the same round: the round evaluates
// requests in submission order, so exactly the first wins and the loser's existing_seqnum
// names the winner's record — same outcome as two back-to-back unbatched rounds.
TEST(AppendBatcherTest, CondConflictWithinOneRound) {
  BatchFixture fx(AppendBatchConfig{.enabled = true, .window = Microseconds(50)},
                  /*nodes=*/1);
  TagId s = fx.space.tags().Intern("s");
  CondAppendResult first, second;
  auto submit = [](LogClient* client, TagId tag, CondAppendResult* out) -> sim::Task<void> {
    *out = co_await client->CondAppend(OneTag(tag), FieldMap(), tag, 0);
  };
  fx.scheduler.Spawn(submit(fx.clients[0].get(), s, &first));
  fx.scheduler.Spawn(submit(fx.clients[0].get(), s, &second));
  fx.scheduler.Run();
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(second.existing_seqnum, first.seqnum);
  const LogClientStats& stats = fx.clients[0]->stats();
  EXPECT_EQ(stats.append_rounds, 1);  // Both requests shared one sequencer round.
  EXPECT_EQ(stats.batched_requests, 2);
  EXPECT_EQ(stats.max_round_occupancy, 2);
  EXPECT_EQ(stats.cond_append_conflicts, 1);
  EXPECT_EQ(fx.space.live_records(), 1u);  // The losing append left no trace.
}

TEST(AppendBatcherTest, WindowCollectsStaggeredRequestsIntoOneRound) {
  BatchFixture fx(AppendBatchConfig{.enabled = true, .window = Microseconds(100)},
                  /*nodes=*/1);
  std::vector<SeqNum> seqnums(8, 0);
  auto submit = [](BatchFixture* fx, int i, SeqNum* out) -> sim::Task<void> {
    co_await fx->scheduler.Delay(Microseconds(i));  // Staggered arrivals inside the window.
    *out = co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
  };
  for (int i = 0; i < 8; ++i) fx.scheduler.Spawn(submit(&fx, i, &seqnums[i]));
  fx.scheduler.Run();
  const LogClientStats& stats = fx.clients[0]->stats();
  EXPECT_EQ(stats.append_rounds, 1);
  EXPECT_EQ(stats.batched_requests, 8);
  EXPECT_EQ(stats.max_round_occupancy, 8);
  // FIFO demux: consecutive seqnums in arrival order.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seqnums[i], seqnums[0] + static_cast<SeqNum>(i));
}

TEST(AppendBatcherTest, MaxBatchSplitsOversizedRounds) {
  BatchFixture fx(AppendBatchConfig{.enabled = true, .window = Microseconds(100),
                                    .max_batch = 4},
                  /*nodes=*/1);
  auto submit = [](BatchFixture* fx) -> sim::Task<void> {
    co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
  };
  for (int i = 0; i < 10; ++i) fx.scheduler.Spawn(submit(&fx));
  fx.scheduler.Run();
  const LogClientStats& stats = fx.clients[0]->stats();
  EXPECT_EQ(stats.batched_requests, 10);
  EXPECT_EQ(stats.max_round_occupancy, 4);
  EXPECT_GE(stats.append_rounds, 3);  // ceil(10 / 4)
}

// An isolated request must not pay for batching machinery: with window 0 and nothing else in
// flight, the batched append completes at exactly the unbatched append's calibrated time
// (same rng, same latency sample, same leg/service split).
TEST(AppendBatcherTest, IsolatedAppendKeepsUnbatchedLatency) {
  auto run_one = [](bool enabled) {
    BatchFixture fx(AppendBatchConfig{.enabled = enabled}, /*nodes=*/1, /*seed=*/5);
    auto submit = [](BatchFixture* fx) -> sim::Task<void> {
      co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
    };
    fx.scheduler.Spawn(submit(&fx));
    fx.scheduler.Run();
    return fx.scheduler.Now();
  };
  EXPECT_EQ(run_one(true), run_one(false));
}

// ---- Pipelined group commit (DESIGN.md §12) -------------------------------------------------
//
// The pipelined engine keeps up to pipeline_depth sequencer rounds in flight but commits
// them strictly in departure order, so the protocol-visible outcome at any depth must be
// identical to the serial engine's. The workload shape uses a small max_batch so the
// round-limited regime (more pending work than one round can carry) actually engages the
// pipeline.

TEST(AppendBatcherTest, PipelinedMatchesSerialContent) {
  for (uint64_t seed : {1u, 13u, 977u}) {
    RunResult serial = RunWorkload(AppendBatchConfig{.enabled = true, .max_batch = 4},
                                   seed, /*workers_per_node=*/8, /*ops_per_worker=*/12);
    for (int depth : {2, 4, 8}) {
      RunResult piped =
          RunWorkload(AppendBatchConfig{.enabled = true, .max_batch = 4,
                                        .pipeline_depth = depth},
                      seed, /*workers_per_node=*/8, /*ops_per_worker=*/12);
      SCOPED_TRACE("seed " + std::to_string(seed) + " depth " + std::to_string(depth));
      ASSERT_EQ(piped.workers.size(), serial.workers.size());
      for (size_t w = 0; w < piped.workers.size(); ++w) {
        EXPECT_EQ(piped.workers[w].own_payloads, serial.workers[w].own_payloads)
            << "worker " << w;
        EXPECT_EQ(piped.workers[w].verdicts, serial.workers[w].verdicts) << "worker " << w;
      }
      EXPECT_EQ(piped.shared_payloads_sorted, serial.shared_payloads_sorted);
      EXPECT_EQ(piped.log_by_seqnum.size(), serial.log_by_seqnum.size());
      // The pipeline actually engaged — rounds overlapped — and it bought simulated time.
      EXPECT_GT(piped.rounds_overlapped, 0);
      EXPECT_GE(piped.max_inflight, 2);
      EXPECT_LT(piped.end_time, serial.end_time);
    }
  }
}

TEST(AppendBatcherTest, PipelinedRunsAreBitIdenticalAcrossRepeats) {
  AppendBatchConfig cfg{.enabled = true, .max_batch = 4, .pipeline_depth = 4};
  RunResult first = RunWorkload(cfg, 42, 8, 10);
  RunResult second = RunWorkload(cfg, 42, 8, 10);
  EXPECT_EQ(first.end_time, second.end_time);
  EXPECT_EQ(first.log_by_seqnum, second.log_by_seqnum);  // Same content at the same seqnums.
  EXPECT_EQ(first.append_rounds, second.append_rounds);
  EXPECT_EQ(first.rounds_overlapped, second.rounds_overlapped);
}

// Depth 1 must run the historic serial loop — an explicitly-constructed depth-1 config and
// the default config are the same engine, bit for bit (the cluster-level golden pins in
// sharded_equivalence_test check the same property against the PR 4 capture).
TEST(AppendBatcherTest, DepthOneIsBitIdenticalToSerialEngine) {
  RunResult serial = RunWorkload(AppendBatchConfig{.enabled = true}, 7, 6, 12);
  RunResult depth1 =
      RunWorkload(AppendBatchConfig{.enabled = true, .pipeline_depth = 1}, 7, 6, 12);
  EXPECT_EQ(depth1.end_time, serial.end_time);
  EXPECT_EQ(depth1.log_by_seqnum, serial.log_by_seqnum);
  EXPECT_EQ(depth1.append_rounds, serial.append_rounds);
  EXPECT_EQ(depth1.rounds_overlapped, 0);
}

// Cond-conflict-heavy shape: many workers race cond-appends on ONE stream, retrying with an
// incremented offset after every conflict until each lands all its records. Which worker wins
// a given offset is timing-dependent (so it may differ across depths), but the protocol
// invariants may not: every offset gets exactly one record, every loser observed the winner,
// and the multiset of committed payloads is depth-invariant.
sim::Task<void> ContendingWorker(LogClient* client, TagId stream, uint64_t seed, int ops,
                                 int64_t* conflicts) {
  size_t believed_len = 0;
  for (int i = 0; i < ops; ++i) {
    std::string value = "c" + std::to_string(seed) + "." + std::to_string(i);
    for (;;) {
      CondAppendResult r =
          co_await client->CondAppend(OneTag(stream), Payload(value), stream, believed_len);
      if (r.ok) {
        ++believed_len;
        break;
      }
      ++*conflicts;
      ++believed_len;  // Someone else owns this offset; try the next one.
    }
  }
}

TEST(AppendBatcherTest, CondConflictHeavyShapeIsDepthInvariant) {
  auto run_at_depth = [](int depth) {
    BatchFixture fx(AppendBatchConfig{.enabled = true, .max_batch = 4,
                                      .pipeline_depth = depth},
                    /*nodes=*/2, /*seed=*/11);
    TagId stream = fx.space.tags().Intern("contended");
    int64_t conflicts = 0;
    for (int w = 0; w < 12; ++w) {
      fx.scheduler.Spawn(ContendingWorker(fx.clients[w % 2].get(), stream, 100 + w,
                                          /*ops=*/6, &conflicts));
    }
    fx.scheduler.Run();
    std::vector<std::string> payloads;
    for (const LogRecordPtr& record : fx.space.ReadStreamUpTo(stream, kMaxSeqNum)) {
      payloads.push_back(record->fields.GetStr("v"));
    }
    return std::make_pair(payloads, conflicts);
  };
  auto [serial_payloads, serial_conflicts] = run_at_depth(1);
  EXPECT_EQ(serial_payloads.size(), 12u * 6u);  // Every record landed exactly once.
  EXPECT_GT(serial_conflicts, 0);               // The shape is actually conflict-heavy.
  std::vector<std::string> serial_sorted = serial_payloads;
  std::sort(serial_sorted.begin(), serial_sorted.end());
  for (int depth : {2, 4, 8}) {
    auto [payloads, conflicts] = run_at_depth(depth);
    SCOPED_TRACE("depth " + std::to_string(depth));
    EXPECT_EQ(payloads.size(), 12u * 6u);
    EXPECT_GT(conflicts, 0);
    std::sort(payloads.begin(), payloads.end());
    EXPECT_EQ(payloads, serial_sorted);
  }
}

// With max_batch 1 every append is its own round, so a burst of simultaneous appends is the
// purest pipelining scenario: depth K should run ~K rounds concurrently and finish in ~1/K
// the serial time.
TEST(AppendBatcherTest, PipelineOverlapsRoundsAndShrinksMakespan) {
  auto run_at_depth = [](int depth) {
    BatchFixture fx(AppendBatchConfig{.enabled = true, .max_batch = 1,
                                      .pipeline_depth = depth, .adaptive = false},
                    /*nodes=*/1, /*seed=*/3);
    auto submit = [](BatchFixture* fx) -> sim::Task<void> {
      co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
    };
    for (int i = 0; i < 16; ++i) fx.scheduler.Spawn(submit(&fx));
    fx.scheduler.Run();
    return std::make_pair(fx.scheduler.Now(), fx.clients[0]->stats().pipeline_max_inflight);
  };
  auto [serial_time, serial_inflight] = run_at_depth(1);
  auto [piped_time, piped_inflight] = run_at_depth(4);
  EXPECT_EQ(serial_inflight, 0);  // Serial engine never reports pipeline depth.
  EXPECT_EQ(piped_inflight, 4);
  // 16 rounds at depth 4 ≈ 4 serial "generations" plus skew: comfortably under half.
  EXPECT_LT(piped_time * 2, serial_time);
}

// The adaptive controller: a storm of small arrivals saturates the pipeline with
// under-filled rounds, so the window widens and the depth rises; once the storm passes,
// isolated appends shrink both back toward the configured floor.
TEST(AppendBatcherTest, AdaptiveControllerWidensUnderStormAndNarrowsWhenIdle) {
  BatchFixture fx(AppendBatchConfig{.enabled = true, .pipeline_depth = 4},
                  /*nodes=*/1, /*seed=*/9);
  // Open-loop burst: arrivals far outpace the round rate, so the queue holds several full
  // rounds (depth raises) and the drain tail departs under-filled with every slot busy
  // (window widens).
  auto storm = [](BatchFixture* fx, int i) -> sim::Task<void> {
    co_await fx->scheduler.Delay(Microseconds(i));
    co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
  };
  for (int i = 0; i < 400; ++i) fx.scheduler.Spawn(storm(&fx, i));
  auto tail = [](BatchFixture* fx, int i) -> sim::Task<void> {
    co_await fx->scheduler.Delay(Milliseconds(50 + 20 * i));  // Long-idle isolated appends.
    co_await fx->clients[0]->Append(OneTag("t"), FieldMap());
  };
  for (int i = 0; i < 8; ++i) fx.scheduler.Spawn(tail(&fx, i));
  fx.scheduler.Run();
  const LogClientStats& stats = fx.clients[0]->stats();
  EXPECT_GT(stats.ctrl_depth_raised, 0);
  EXPECT_GT(stats.ctrl_window_widened, 0);
  EXPECT_GT(stats.ctrl_window_narrowed, 0);
  EXPECT_GT(stats.ctrl_depth_lowered, 0);
  EXPECT_GT(stats.pipeline_rounds_overlapped, 0);
  // Fully decayed by the idle tail: the next isolated append pays no residual window.
  AppendBatcher* batcher = fx.clients[0]->batcher();
  ASSERT_NE(batcher, nullptr);
  EXPECT_EQ(batcher->effective_window(), 0);
  EXPECT_EQ(batcher->effective_depth(), 1);
}

// HM_PIPELINE / HM_BATCH_WINDOW / HM_BATCH_MAX environment plumbing (src/common/env.h).
TEST(AppendBatcherTest, PipelineKnobsReadEnvironment) {
  auto with_env = [](const char* name, const char* value, auto probe) {
    const char* old = getenv(name);
    std::string saved = old != nullptr ? old : "";
    bool had = old != nullptr;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
    probe();
    if (had) {
      setenv(name, saved.c_str(), 1);
    } else {
      unsetenv(name);
    }
  };
  with_env("HM_PIPELINE", nullptr, [] { EXPECT_EQ(DefaultAppendPipelineDepth(), 1); });
  with_env("HM_PIPELINE", "4", [] { EXPECT_EQ(DefaultAppendPipelineDepth(), 4); });
  // Out-of-range values abort with a diagnostic instead of silently clamping: a typo'd knob
  // (HM_PIPELINE=O1, =0) must never run a sweep with a config the user did not ask for.
  with_env("HM_PIPELINE", "0",
           [] { EXPECT_DEATH(DefaultAppendPipelineDepth(), "below the knob's minimum"); });
  with_env("HM_BATCH_WINDOW", nullptr, [] { EXPECT_EQ(DefaultAppendBatchWindowUs(), 0); });
  with_env("HM_BATCH_WINDOW", "150", [] { EXPECT_EQ(DefaultAppendBatchWindowUs(), 150); });
  with_env("HM_BATCH_MAX", nullptr, [] { EXPECT_EQ(DefaultAppendBatchMax(), 64); });
  with_env("HM_BATCH_MAX", "16", [] { EXPECT_EQ(DefaultAppendBatchMax(), 16); });
}

}  // namespace
}  // namespace halfmoon::sharedlog
