#include "src/sharedlog/log_space.h"

#include <gtest/gtest.h>

namespace halfmoon::sharedlog {
namespace {

FieldMap Fields(const std::string& op, int64_t step) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", step);
  return f;
}

TEST(LogSpaceTest, AppendAssignsMonotonicSeqnums) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("x", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("x", 1));
  SeqNum c = log.Append(0, OneTag("u"), Fields("x", 2));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(LogSpaceTest, SeqnumsStartAboveZero) {
  // Seqnum 0 is reserved as "before everything" (fresh objects carry version 0).
  LogSpace log;
  EXPECT_GT(log.Append(0, OneTag("t"), Fields("x", 0)), 0u);
}

TEST(LogSpaceTest, ReadPrevFindsLatestAtOrBefore) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  log.Append(0, OneTag("t"), Fields("c", 0));

  auto at_b = log.ReadPrev("t", b);
  ASSERT_TRUE(at_b != nullptr);
  EXPECT_EQ(at_b->fields.GetStr("op"), "b");

  auto between = log.ReadPrev("t", b - 1);
  ASSERT_TRUE(between != nullptr);
  EXPECT_EQ(between->seqnum, a);

  EXPECT_EQ(log.ReadPrev("t", a - 1), nullptr);
  auto latest = log.ReadPrev("t", kMaxSeqNum);
  ASSERT_TRUE(latest != nullptr);
  EXPECT_EQ(latest->fields.GetStr("op"), "c");
}

TEST(LogSpaceTest, ReadPrevRespectsSubStreams) {
  LogSpace log;
  log.Append(0, OneTag("t1"), Fields("one", 0));
  log.Append(0, OneTag("t2"), Fields("two", 0));
  auto r = log.ReadPrev("t1", kMaxSeqNum);
  ASSERT_TRUE(r != nullptr);
  EXPECT_EQ(r->fields.GetStr("op"), "one");
  EXPECT_EQ(log.ReadPrev("t3", kMaxSeqNum), nullptr);
}

TEST(LogSpaceTest, ReadNextFindsEarliestAtOrAfter) {
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  auto r = log.ReadNext("t", b);
  ASSERT_TRUE(r != nullptr);
  EXPECT_EQ(r->fields.GetStr("op"), "b");
  EXPECT_EQ(log.ReadNext("t", b + 1), nullptr);
}

TEST(LogSpaceTest, MultiTagRecordsAppearInAllStreams) {
  LogSpace log;
  SeqNum s = log.Append(0, TwoTags("step", "obj"), Fields("w", 1));
  EXPECT_EQ(log.ReadPrev("step", kMaxSeqNum)->seqnum, s);
  EXPECT_EQ(log.ReadPrev("obj", kMaxSeqNum)->seqnum, s);
}

TEST(LogSpaceTest, ReadStreamReturnsRecordsInOrder) {
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  log.Append(0, OneTag("u"), Fields("skip", 0));
  log.Append(0, OneTag("t"), Fields("b", 1));
  std::vector<LogRecordPtr> stream = log.ReadStream("t");
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0]->fields.GetStr("op"), "a");
  EXPECT_EQ(stream[1]->fields.GetStr("op"), "b");
}

TEST(LogSpaceTest, TrimRemovesPrefixOfSubStream) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 1));
  log.Trim(0, "t", a);
  EXPECT_EQ(log.ReadPrev("t", a), nullptr);
  EXPECT_EQ(log.ReadPrev("t", kMaxSeqNum)->seqnum, b);
  EXPECT_EQ(log.ReadStream("t").size(), 1u);
}

TEST(LogSpaceTest, TrimFreesStorageOnlyWhenAllTagsTrimmed) {
  LogSpace log;
  log.Append(0, TwoTags("a", "b"), Fields("w", 0));
  int64_t full = log.CurrentBytes();
  ASSERT_GT(full, 0);
  log.Trim(0, "a", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), full);  // Still referenced by "b".
  EXPECT_EQ(log.live_records(), 1u);
  log.Trim(0, "b", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), 0);
  EXPECT_EQ(log.live_records(), 0u);
}

TEST(LogSpaceTest, StreamLengthCountsTrimmedHistory) {
  // Logical offsets must be stable across trims (logCondAppend positions).
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  log.Append(0, OneTag("t"), Fields("b", 1));
  log.Trim(0, "t", kMaxSeqNum);
  EXPECT_EQ(log.StreamLength("t"), 2u);
}

TEST(LogSpaceTest, CondAppendSucceedsAtExpectedOffset) {
  LogSpace log;
  CondAppendResult r0 = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  EXPECT_TRUE(r0.ok);
  CondAppendResult r1 = log.CondAppend(0, OneTag("s"), Fields("read", 1), "s", 1);
  EXPECT_TRUE(r1.ok);
  EXPECT_GT(r1.seqnum, r0.seqnum);
}

TEST(LogSpaceTest, CondAppendConflictReturnsExistingRecord) {
  LogSpace log;
  CondAppendResult winner = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  CondAppendResult loser = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  EXPECT_FALSE(loser.ok);
  EXPECT_EQ(loser.existing_seqnum, winner.seqnum);
  // The losing append left no trace.
  EXPECT_EQ(log.StreamLength("s"), 1u);
}

TEST(LogSpaceTest, CondAppendBatchCommitsConsecutively) {
  LogSpace log;
  TagId s = log.tags().Intern("s");
  TagId kx = log.tags().Intern("k:x");
  std::vector<LogSpace::BatchEntry> batch(2);
  batch[0].tags = OneTag(s);
  batch[0].fields = Fields("write-pre", 1);
  batch[1].tags = TwoTags(s, kx);
  batch[1].fields = Fields("write", 1);
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), s, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(log.StreamLength("s"), 2u);
  auto commit = log.ReadPrev("k:x", kMaxSeqNum);
  ASSERT_TRUE(commit != nullptr);
  EXPECT_EQ(commit->seqnum, r.seqnum + 1);
}

TEST(LogSpaceTest, CondAppendBatchConflictIsAllOrNothing) {
  LogSpace log;
  log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  TagId s = log.tags().Find("s");
  TagId kx = log.tags().Intern("k:x");
  std::vector<LogSpace::BatchEntry> batch(2);
  batch[0].tags = OneTag(s);
  batch[0].fields = Fields("write-pre", 1);
  batch[1].tags = TwoTags(s, kx);
  batch[1].fields = Fields("write", 1);
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), s, 0);  // Stale offset.
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(log.StreamLength("s"), 1u);
  EXPECT_EQ(log.ReadPrev("k:x", kMaxSeqNum), nullptr);
}

TEST(LogSpaceTest, FindFirstByStepHonorsStreamOrder) {
  LogSpace log;
  SeqNum first = log.Append(0, OneTag("s"), Fields("read", 3));
  log.Append(0, OneTag("s"), Fields("read", 3));  // A racing duplicate.
  auto r = log.FindFirstByStep("s", "read", 3);
  ASSERT_TRUE(r != nullptr);
  EXPECT_EQ(r->seqnum, first);
  EXPECT_EQ(log.FindFirstByStep("s", "read", 4), nullptr);
}

TEST(LogSpaceTest, StreamTagsWithPrefixEnumeratesLiveStreams) {
  LogSpace log;
  log.Append(0, OneTag("k:a"), Fields("w", 0));
  log.Append(0, OneTag("k:b"), Fields("w", 0));
  log.Append(0, OneTag("other"), Fields("w", 0));
  std::vector<std::string> tags = log.StreamTagsWithPrefix("k:");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], "k:a");
  EXPECT_EQ(tags[1], "k:b");
  log.Trim(0, "k:a", kMaxSeqNum);
  EXPECT_EQ(log.StreamTagsWithPrefix("k:").size(), 1u);
}

TEST(LogSpaceTest, ReadsAliasTheStoredRecordWithoutCopying) {
  // Every read API must return a view of the one committed record, not a duplicate.
  LogSpace log;
  SeqNum s = log.Append(0, TwoTags("t", "u"), Fields("read", 5));
  LogRecordPtr stored = log.Get(s);
  ASSERT_TRUE(stored != nullptr);
  EXPECT_EQ(log.ReadPrev("t", kMaxSeqNum).get(), stored.get());
  EXPECT_EQ(log.ReadNext("u", 0).get(), stored.get());
  EXPECT_EQ(log.FindFirstByStep("t", "read", 5).get(), stored.get());
  std::vector<LogRecordPtr> stream = log.ReadStream("t");
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].get(), stored.get());
}

TEST(LogSpaceTest, TrimCompactsStreamIndexMemory) {
  // Regression: the old index kept every trimmed seqnum forever, so a long-lived stream's
  // index grew without bound. The compacted index must stay bounded by the live suffix.
  LogSpace log;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      log.Append(0, OneTag("t"), Fields("w", cycle * 10 + i));
    }
    log.Trim(0, "t", kMaxSeqNum);
    EXPECT_EQ(log.IndexEntries(), 0u);
    EXPECT_EQ(log.live_records(), 0u);
    EXPECT_EQ(log.CurrentBytes(), 0);
  }
  // Logical offsets keep counting the full (trimmed) history.
  EXPECT_EQ(log.StreamLength("t"), 1000u);
}

TEST(LogSpaceTest, FullyTrimmedStreamsLeaveNoResidue) {
  // Regression for the fully-trimmed-stream leak: after every stream of a batch of objects
  // is trimmed, neither the record store, the per-tag indices, nor the live-tag set may
  // retain anything.
  LogSpace log;
  for (int i = 0; i < 50; ++i) {
    log.Append(0, OneTag("k:obj" + std::to_string(i)), Fields("w", i));
  }
  EXPECT_EQ(log.StreamTagsWithPrefix("k:").size(), 50u);
  for (int i = 0; i < 50; ++i) {
    log.Trim(0, "k:obj" + std::to_string(i), kMaxSeqNum);
  }
  EXPECT_EQ(log.live_records(), 0u);
  EXPECT_EQ(log.IndexEntries(), 0u);
  EXPECT_TRUE(log.StreamTagsWithPrefix("k:").empty());
}

TEST(LogSpaceTest, CondAppendOffsetsStayStableAfterCompaction) {
  // A trimmed prefix must not shift logCondAppend positions: the next logical offset is the
  // full-history length, and appends at stale offsets still conflict.
  LogSpace log;
  ASSERT_TRUE(log.CondAppend(0, OneTag("s"), Fields("a", 0), "s", 0).ok);
  ASSERT_TRUE(log.CondAppend(0, OneTag("s"), Fields("b", 1), "s", 1).ok);
  log.Trim(0, "s", kMaxSeqNum);
  ASSERT_EQ(log.StreamLength("s"), 2u);
  CondAppendResult next = log.CondAppend(0, OneTag("s"), Fields("c", 2), "s", 2);
  EXPECT_TRUE(next.ok);
  EXPECT_EQ(log.StreamLength("s"), 3u);
}

TEST(LogSpaceTest, CondAppendBatchThenPartialTrimReleasesRefs) {
  LogSpace log;
  TagId s = log.tags().Intern("s");
  std::vector<LogSpace::BatchEntry> batch(3);
  for (int i = 0; i < 3; ++i) {
    batch[static_cast<size_t>(i)].tags = OneTag(s);
    batch[static_cast<size_t>(i)].fields = Fields("w", i);
  }
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), s, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(log.live_records(), 3u);

  // Trim past the first two records of the batch: their storage is released, the survivor
  // stays readable, and FindFirstByStep only sees live records.
  log.Trim(0, s, r.seqnum + 1);
  EXPECT_EQ(log.live_records(), 1u);
  EXPECT_EQ(log.IndexEntries(), 1u);
  EXPECT_EQ(log.FindFirstByStep("s", "w", 0), nullptr);
  EXPECT_EQ(log.FindFirstByStep("s", "w", 1), nullptr);
  LogRecordPtr survivor = log.FindFirstByStep("s", "w", 2);
  ASSERT_TRUE(survivor != nullptr);
  EXPECT_EQ(survivor->seqnum, r.seqnum + 2);
  // A view handed out before the trim keeps the record alive independently of the store.
  LogRecordPtr held = log.Get(r.seqnum + 2);
  log.Trim(0, "s", kMaxSeqNum);
  EXPECT_EQ(log.live_records(), 0u);
  EXPECT_EQ(held->fields.GetInt("step"), 2);
}

TEST(LogSpaceTest, CommitListenerFiresPerAppend) {
  LogSpace log;
  std::vector<SeqNum> seen;
  log.SetCommitListener([&](SeqNum s) { seen.push_back(s); });
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  EXPECT_EQ(seen, (std::vector<SeqNum>{a, b}));
}

TEST(LogSpaceTest, CondAppendBatchMismatchLeavesNoTrace) {
  // The undo path of a failed batch must restore every observable structure: seqnum counter,
  // record store, stream indices, and the commit listener must stay silent.
  LogSpace log;
  TagId s = log.tags().Intern("s");
  TagId kx = log.tags().Intern("k:x");
  log.CondAppend(0, OneTag(s), Fields("init", 0), s, 0);
  SeqNum next_before = log.next_seqnum();
  size_t live_before = log.live_records();
  size_t index_before = log.IndexEntries();
  int64_t bytes_before = log.CurrentBytes();
  int listener_calls = 0;
  log.SetCommitListener([&](SeqNum) { ++listener_calls; });

  std::vector<LogSpace::BatchEntry> batch(2);
  batch[0].tags = OneTag(s);
  batch[0].fields = Fields("write-pre", 1);
  batch[1].tags = TwoTags(s, kx);
  batch[1].fields = Fields("write", 1);
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), s, /*cond_pos=*/0);

  EXPECT_FALSE(r.ok);
  EXPECT_EQ(log.next_seqnum(), next_before);
  EXPECT_EQ(log.live_records(), live_before);
  EXPECT_EQ(log.IndexEntries(), index_before);
  EXPECT_EQ(log.CurrentBytes(), bytes_before);
  EXPECT_EQ(listener_calls, 0);
}

TEST(LogSpaceTest, AppendGroupMixedVerdicts) {
  // One group-committed round carrying an unconditional request, a passing cond request, a
  // conflicting cond request, and a trailing unconditional one. Each request sees the stream
  // state left by its predecessors; the conflicting one leaves no trace; the listener fires
  // exactly once, with the round's last committed seqnum.
  LogSpace log;
  TagId s = log.tags().Intern("s");
  TagId t = log.tags().Intern("t");
  std::vector<SeqNum> listener_calls;
  log.SetCommitListener([&](SeqNum n) { listener_calls.push_back(n); });

  std::vector<LogSpace::GroupRequest> requests(4);
  requests[0].entries.push_back({OneTag(t), Fields("a", 0)});
  requests[1].entries.push_back({OneTag(s), Fields("b", 0)});
  requests[1].cond_tag = s;
  requests[1].cond_pos = 0;
  requests[2].entries.push_back({OneTag(s), Fields("c", 0)});
  requests[2].cond_tag = s;
  requests[2].cond_pos = 0;  // Stale: request 1 already took offset 0.
  requests[3].entries.push_back({TwoTags(s, t), Fields("d", 1)});

  std::vector<LogSpace::GroupVerdict> verdicts = log.AppendGroup(0, std::move(requests));
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_TRUE(verdicts[0].ok);
  EXPECT_TRUE(verdicts[1].ok);
  EXPECT_FALSE(verdicts[2].ok);
  EXPECT_EQ(verdicts[2].existing_seqnum, verdicts[1].seqnum);
  EXPECT_TRUE(verdicts[3].ok);
  // Committed seqnums are consecutive across the surviving requests.
  EXPECT_EQ(verdicts[1].seqnum, verdicts[0].seqnum + 1);
  EXPECT_EQ(verdicts[3].seqnum, verdicts[1].seqnum + 1);
  EXPECT_EQ(log.live_records(), 3u);
  EXPECT_EQ(log.StreamLength("s"), 2u);  // "b" and "d"; "c" left no trace.
  ASSERT_EQ(listener_calls.size(), 1u);
  EXPECT_EQ(listener_calls[0], verdicts[3].seqnum);
}

TEST(LogSpaceTest, AppendGroupAllConflictingKeepsListenerSilent) {
  LogSpace log;
  TagId s = log.tags().Intern("s");
  log.CondAppend(0, OneTag(s), Fields("init", 0), s, 0);
  int listener_calls = 0;
  log.SetCommitListener([&](SeqNum) { ++listener_calls; });
  std::vector<LogSpace::GroupRequest> requests(2);
  for (auto& request : requests) {
    request.entries.push_back({OneTag(s), Fields("x", 0)});
    request.cond_tag = s;
    request.cond_pos = 0;  // Both stale.
  }
  std::vector<LogSpace::GroupVerdict> verdicts = log.AppendGroup(0, std::move(requests));
  EXPECT_FALSE(verdicts[0].ok);
  EXPECT_FALSE(verdicts[1].ok);
  EXPECT_EQ(listener_calls, 0);
  EXPECT_EQ(log.live_records(), 1u);
}

TEST(LogSpaceTest, AppendGroupMultiEntryRequestCommitsAtomically) {
  // A request's entries are an atomic sub-group (the batched cond-append shape): on success
  // they take consecutive seqnums, on conflict none of them appear.
  LogSpace log;
  TagId s = log.tags().Intern("s");
  std::vector<LogSpace::GroupRequest> requests(2);
  requests[0].entries.push_back({OneTag(s), Fields("pre", 0)});
  requests[0].entries.push_back({OneTag(s), Fields("commit", 0)});
  requests[0].cond_tag = s;
  requests[0].cond_pos = 0;
  requests[1].entries.push_back({OneTag(s), Fields("pre", 1)});
  requests[1].entries.push_back({OneTag(s), Fields("commit", 1)});
  requests[1].cond_tag = s;
  requests[1].cond_pos = 0;  // Conflicts: request 0 grew the stream to length 2.
  std::vector<LogSpace::GroupVerdict> verdicts = log.AppendGroup(0, std::move(requests));
  EXPECT_TRUE(verdicts[0].ok);
  EXPECT_FALSE(verdicts[1].ok);
  EXPECT_EQ(verdicts[1].existing_seqnum, verdicts[0].seqnum);
  EXPECT_EQ(log.StreamLength("s"), 2u);
  EXPECT_EQ(log.live_records(), 2u);
}

TEST(LogSpaceTest, OpIdsAreInternedAndStamped) {
  // Protocol op names are pre-interned to the kOp* constants; Append stamps each record's
  // dense op id so FindFirstByStep scans with integer compares.
  LogSpace log;
  EXPECT_EQ(log.ops().Find("read"), kOpRead);
  EXPECT_EQ(log.ops().Find("write"), kOpWrite);
  EXPECT_EQ(log.ops().Find("invoke-pre"), kOpInvokePre);
  SeqNum s = log.Append(0, OneTag("t"), Fields("write", 3));
  EXPECT_EQ(log.Get(s)->op, kOpWrite);
  EXPECT_EQ(log.FindFirstByStep(log.tags().Find("t"), kOpWrite, 3)->seqnum, s);
  // A record without an "op" field carries the invalid id and never matches a step scan.
  FieldMap opless;
  opless.SetInt("step", 3);
  SeqNum u = log.Append(0, OneTag("u"), std::move(opless));
  EXPECT_EQ(log.Get(u)->op, kInvalidOpId);
  EXPECT_EQ(log.FindFirstByStep("u", "no-such-op", 3), nullptr);
}

TEST(LogSpaceTest, ByteAccountingMatchesRecordSizes) {
  LogSpace log;
  EXPECT_EQ(log.CurrentBytes(), 0);
  log.Append(0, OneTag("t"), Fields("a", 0));
  int64_t one = log.CurrentBytes();
  log.Append(0, OneTag("t"), Fields("a", 0));
  EXPECT_EQ(log.CurrentBytes(), 2 * one);
  log.Trim(0, "t", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), 0);
}

}  // namespace
}  // namespace halfmoon::sharedlog
