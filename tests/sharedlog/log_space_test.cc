#include "src/sharedlog/log_space.h"

#include <gtest/gtest.h>

namespace halfmoon::sharedlog {
namespace {

FieldMap Fields(const std::string& op, int64_t step) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", step);
  return f;
}

TEST(LogSpaceTest, AppendAssignsMonotonicSeqnums) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("x", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("x", 1));
  SeqNum c = log.Append(0, OneTag("u"), Fields("x", 2));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(LogSpaceTest, SeqnumsStartAboveZero) {
  // Seqnum 0 is reserved as "before everything" (fresh objects carry version 0).
  LogSpace log;
  EXPECT_GT(log.Append(0, OneTag("t"), Fields("x", 0)), 0u);
}

TEST(LogSpaceTest, ReadPrevFindsLatestAtOrBefore) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  log.Append(0, OneTag("t"), Fields("c", 0));

  auto at_b = log.ReadPrev("t", b);
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(at_b->fields.GetStr("op"), "b");

  auto between = log.ReadPrev("t", b - 1);
  ASSERT_TRUE(between.has_value());
  EXPECT_EQ(between->seqnum, a);

  EXPECT_FALSE(log.ReadPrev("t", a - 1).has_value());
  auto latest = log.ReadPrev("t", kMaxSeqNum);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->fields.GetStr("op"), "c");
}

TEST(LogSpaceTest, ReadPrevRespectsSubStreams) {
  LogSpace log;
  log.Append(0, OneTag("t1"), Fields("one", 0));
  log.Append(0, OneTag("t2"), Fields("two", 0));
  auto r = log.ReadPrev("t1", kMaxSeqNum);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->fields.GetStr("op"), "one");
  EXPECT_FALSE(log.ReadPrev("t3", kMaxSeqNum).has_value());
}

TEST(LogSpaceTest, ReadNextFindsEarliestAtOrAfter) {
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  auto r = log.ReadNext("t", b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->fields.GetStr("op"), "b");
  EXPECT_FALSE(log.ReadNext("t", b + 1).has_value());
}

TEST(LogSpaceTest, MultiTagRecordsAppearInAllStreams) {
  LogSpace log;
  SeqNum s = log.Append(0, TwoTags("step", "obj"), Fields("w", 1));
  EXPECT_EQ(log.ReadPrev("step", kMaxSeqNum)->seqnum, s);
  EXPECT_EQ(log.ReadPrev("obj", kMaxSeqNum)->seqnum, s);
}

TEST(LogSpaceTest, ReadStreamReturnsRecordsInOrder) {
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  log.Append(0, OneTag("u"), Fields("skip", 0));
  log.Append(0, OneTag("t"), Fields("b", 1));
  std::vector<LogRecord> stream = log.ReadStream("t");
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].fields.GetStr("op"), "a");
  EXPECT_EQ(stream[1].fields.GetStr("op"), "b");
}

TEST(LogSpaceTest, TrimRemovesPrefixOfSubStream) {
  LogSpace log;
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 1));
  log.Trim(0, "t", a);
  EXPECT_FALSE(log.ReadPrev("t", a).has_value());
  EXPECT_EQ(log.ReadPrev("t", kMaxSeqNum)->seqnum, b);
  EXPECT_EQ(log.ReadStream("t").size(), 1u);
}

TEST(LogSpaceTest, TrimFreesStorageOnlyWhenAllTagsTrimmed) {
  LogSpace log;
  log.Append(0, TwoTags("a", "b"), Fields("w", 0));
  int64_t full = log.CurrentBytes();
  ASSERT_GT(full, 0);
  log.Trim(0, "a", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), full);  // Still referenced by "b".
  EXPECT_EQ(log.live_records(), 1u);
  log.Trim(0, "b", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), 0);
  EXPECT_EQ(log.live_records(), 0u);
}

TEST(LogSpaceTest, StreamLengthCountsTrimmedHistory) {
  // Logical offsets must be stable across trims (logCondAppend positions).
  LogSpace log;
  log.Append(0, OneTag("t"), Fields("a", 0));
  log.Append(0, OneTag("t"), Fields("b", 1));
  log.Trim(0, "t", kMaxSeqNum);
  EXPECT_EQ(log.StreamLength("t"), 2u);
}

TEST(LogSpaceTest, CondAppendSucceedsAtExpectedOffset) {
  LogSpace log;
  CondAppendResult r0 = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  EXPECT_TRUE(r0.ok);
  CondAppendResult r1 = log.CondAppend(0, OneTag("s"), Fields("read", 1), "s", 1);
  EXPECT_TRUE(r1.ok);
  EXPECT_GT(r1.seqnum, r0.seqnum);
}

TEST(LogSpaceTest, CondAppendConflictReturnsExistingRecord) {
  LogSpace log;
  CondAppendResult winner = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  CondAppendResult loser = log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  EXPECT_FALSE(loser.ok);
  EXPECT_EQ(loser.existing_seqnum, winner.seqnum);
  // The losing append left no trace.
  EXPECT_EQ(log.StreamLength("s"), 1u);
}

TEST(LogSpaceTest, CondAppendBatchCommitsConsecutively) {
  LogSpace log;
  std::vector<LogSpace::BatchEntry> batch(2);
  batch[0].tags = OneTag("s");
  batch[0].fields = Fields("write-pre", 1);
  batch[1].tags = TwoTags("s", "k:x");
  batch[1].fields = Fields("write", 1);
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), "s", 0);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(log.StreamLength("s"), 2u);
  auto commit = log.ReadPrev("k:x", kMaxSeqNum);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->seqnum, r.seqnum + 1);
}

TEST(LogSpaceTest, CondAppendBatchConflictIsAllOrNothing) {
  LogSpace log;
  log.CondAppend(0, OneTag("s"), Fields("init", 0), "s", 0);
  std::vector<LogSpace::BatchEntry> batch(2);
  batch[0].tags = OneTag("s");
  batch[0].fields = Fields("write-pre", 1);
  batch[1].tags = TwoTags("s", "k:x");
  batch[1].fields = Fields("write", 1);
  CondAppendResult r = log.CondAppendBatch(0, std::move(batch), "s", 0);  // Stale offset.
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(log.StreamLength("s"), 1u);
  EXPECT_FALSE(log.ReadPrev("k:x", kMaxSeqNum).has_value());
}

TEST(LogSpaceTest, FindFirstByStepHonorsStreamOrder) {
  LogSpace log;
  SeqNum first = log.Append(0, OneTag("s"), Fields("read", 3));
  log.Append(0, OneTag("s"), Fields("read", 3));  // A racing duplicate.
  auto r = log.FindFirstByStep("s", "read", 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->seqnum, first);
  EXPECT_FALSE(log.FindFirstByStep("s", "read", 4).has_value());
}

TEST(LogSpaceTest, StreamTagsWithPrefixEnumeratesLiveStreams) {
  LogSpace log;
  log.Append(0, OneTag("k:a"), Fields("w", 0));
  log.Append(0, OneTag("k:b"), Fields("w", 0));
  log.Append(0, OneTag("other"), Fields("w", 0));
  std::vector<Tag> tags = log.StreamTagsWithPrefix("k:");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], "k:a");
  EXPECT_EQ(tags[1], "k:b");
  log.Trim(0, "k:a", kMaxSeqNum);
  EXPECT_EQ(log.StreamTagsWithPrefix("k:").size(), 1u);
}

TEST(LogSpaceTest, CommitListenerFiresPerAppend) {
  LogSpace log;
  std::vector<SeqNum> seen;
  log.SetCommitListener([&](SeqNum s) { seen.push_back(s); });
  SeqNum a = log.Append(0, OneTag("t"), Fields("a", 0));
  SeqNum b = log.Append(0, OneTag("t"), Fields("b", 0));
  EXPECT_EQ(seen, (std::vector<SeqNum>{a, b}));
}

TEST(LogSpaceTest, ByteAccountingMatchesRecordSizes) {
  LogSpace log;
  EXPECT_EQ(log.CurrentBytes(), 0);
  log.Append(0, OneTag("t"), Fields("a", 0));
  int64_t one = log.CurrentBytes();
  log.Append(0, OneTag("t"), Fields("a", 0));
  EXPECT_EQ(log.CurrentBytes(), 2 * one);
  log.Trim(0, "t", kMaxSeqNum);
  EXPECT_EQ(log.CurrentBytes(), 0);
}

}  // namespace
}  // namespace halfmoon::sharedlog
