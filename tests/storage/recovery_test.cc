// Crash-restart recovery at the cluster grain (DESIGN.md §13): a node kill wipes every
// volatile structure, and journal replay must rebuild the shared log's tag indices and the
// KV store's version index to exactly the acknowledged state. Replay is also idempotent —
// replaying the same durable prefix twice yields bit-identical state (the recovery-
// idempotence satellite of this PR) — pinned here by an FNV-1a content checksum.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/value.h"
#include "src/kvstore/kv_state.h"
#include "src/runtime/cluster.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/task.h"

namespace halfmoon::runtime {
namespace {

using kvstore::VersionTuple;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::TagId;

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}
uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }
uint64_t FnvStr(uint64_t h, const std::string& s) { return FnvBytes(h, s.data(), s.size()); }

// Content checksum of the rebuilt state: every live tag's stream (name, seqnums, field maps)
// XOR-folded, plus the KV latest slots and version index of the keys/objects the test wrote.
// Seqnums ARE included — recovery must rebuild the identical assignment, not merely the same
// per-tag order.
uint64_t StateChecksum(Cluster& cluster, const std::vector<std::string>& kv_keys,
                       const std::vector<TagId>& objects) {
  uint64_t combined = 0;
  sharedlog::ShardedLog& log = cluster.log_space();
  for (TagId tag : log.LiveTagsWithPrefix("")) {
    uint64_t h = kFnvOffset;
    h = FnvStr(h, log.tags().Name(tag));
    for (const LogRecordPtr& record : log.ReadStreamUpTo(tag, sharedlog::kMaxSeqNum)) {
      h = FnvU64(h, record->seqnum);
      for (const auto& [key, field] : record->fields) {
        h = FnvStr(h, key);
        if (const int64_t* iv = std::get_if<int64_t>(&field)) {
          h = FnvU64(h, static_cast<uint64_t>(*iv));
        } else {
          h = FnvStr(h, std::get<std::string>(field));
        }
      }
    }
    combined ^= h;
  }

  uint64_t kv_hash = kFnvOffset;
  kv_hash = FnvU64(kv_hash, log.next_seqnum());
  for (const std::string& key : kv_keys) {
    kv_hash = FnvStr(kv_hash, key);
    auto value = cluster.kv_state().Get(key);
    kv_hash = FnvStr(kv_hash, value.has_value() ? *value : std::string("<missing>"));
    auto version = cluster.kv_state().GetVersion(key);
    kv_hash = FnvU64(kv_hash, version.has_value() ? version->cursor_ts : ~0ull);
    kv_hash = FnvU64(kv_hash, version.has_value() ? version->counter : ~0ull);
  }
  for (TagId object : objects) {
    kv_hash = FnvU64(kv_hash, object);
    kv_hash = FnvU64(kv_hash, cluster.kv_state().VersionCount(object));
  }
  return combined ^ kv_hash;
}

ClusterConfig DurableConfig() {
  ClusterConfig config;
  config.function_nodes = 2;
  config.workers_per_node = 4;
  config.durable = true;
  return config;
}

FieldMap Fields(const std::string& op, int64_t step) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", step);
  return f;
}

// Appends a few records under two tags and writes the KV store through the clients — the
// acknowledged state every recovery below must reproduce.
sim::Task<void> PopulateWorkload(Cluster* cluster) {
  sharedlog::LogClient& log = cluster->node(0).log();
  kvstore::KvClient& kv = cluster->node(0).kv();
  for (int i = 0; i < 4; ++i) {
    co_await log.Append(std::vector<std::string>(1, "k:a"), Fields("write", i));
    co_await log.Append(std::vector<std::string>(1, "k:b"), Fields("write", i));
  }
  co_await kv.Put("a", "va");
  co_await kv.CondPut("b", "vb", VersionTuple{3, 1});
  co_await kv.PutVersioned(1, "v1", "payload-1");
  co_await kv.PutVersioned(1, "v2", "payload-2");
  co_await kv.DeleteVersioned(1, "v1");
}

const std::vector<std::string> kKvKeys = {"a", "b"};
const std::vector<TagId> kObjects = {1};

TEST(RecoveryTest, StorageKillRebuildsLogAndKvExactly) {
  Cluster cluster(DurableConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster));
  cluster.scheduler().Run();

  ASSERT_NE(cluster.log_durability(), nullptr);
  ASSERT_NE(cluster.kv_durability(), nullptr);
  // At quiescence everything acknowledged has been flushed.
  EXPECT_EQ(cluster.log_durability()->durable_offset(),
            cluster.log_durability()->tail_offset());

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  size_t live_before = cluster.log_space().live_records();
  cluster.KillRestartStorage();
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
  EXPECT_EQ(cluster.log_space().live_records(), live_before);
  EXPECT_EQ(cluster.kv_state().Get("a"), std::optional<Value>("va"));
  EXPECT_EQ(cluster.kv_state().VersionCount(1), 1u);  // v1 deleted, v2 live.
  EXPECT_GT(cluster.log_durability()->stats().kills, 0);
}

TEST(RecoveryTest, ReplayIsIdempotent) {
  // The recovery-idempotence satellite: killing and replaying the same durable prefix twice
  // must land on bit-identical tag indices and KV version index.
  Cluster cluster(DurableConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster));
  cluster.scheduler().Run();

  cluster.KillRestartStorage();
  uint64_t first = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  uint64_t second = StateChecksum(cluster, kKvKeys, kObjects);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cluster.log_durability()->stats().kills, 2);
}

TEST(RecoveryTest, SequencerKillSparesTheKvJournal) {
  Cluster cluster(DurableConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster));
  cluster.scheduler().Run();

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartSequencer();
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
  EXPECT_EQ(cluster.log_durability()->stats().kills, 1);
  EXPECT_EQ(cluster.kv_durability()->stats().kills, 0);  // Separate devices, separate fate.
}

TEST(RecoveryTest, ClusterKeepsWorkingAcrossAMidRunKill) {
  // Appends before and after a kill that lands between acknowledged operations: nothing
  // acknowledged is lost, the allocator resumes from the durable watermark, and the final
  // stream holds every record in order.
  Cluster cluster(DurableConfig());
  std::vector<SeqNum> acked;
  cluster.scheduler().Spawn([](Cluster* cluster, std::vector<SeqNum>* acked) -> sim::Task<void> {
    sharedlog::LogClient& log = cluster->node(0).log();
    for (int i = 0; i < 3; ++i) {
      acked->push_back(co_await log.Append(std::vector<std::string>(1, "k:a"), Fields("pre", i)));
    }
    cluster->KillRestartStorage();  // Quiescent instant: acks imply durability.
    for (int i = 0; i < 3; ++i) {
      acked->push_back(
          co_await log.Append(std::vector<std::string>(1, "k:a"), Fields("post", i)));
    }
  }(&cluster, &acked));
  cluster.scheduler().Run();

  ASSERT_EQ(acked.size(), 6u);
  std::vector<LogRecordPtr> stream =
      cluster.log_space().ReadStreamUpTo("k:a", sharedlog::kMaxSeqNum);
  ASSERT_EQ(stream.size(), 6u);
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i]->seqnum, acked[i]);
    EXPECT_EQ(stream[i]->fields.GetStr("op"), i < 3 ? "pre" : "post");
  }
}

TEST(RecoveryTest, FunctionNodeKillOnlyDropsSoftState) {
  Cluster cluster(DurableConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster));
  cluster.scheduler().Run();

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartFunctionNode(0);
  EXPECT_EQ(cluster.node(0).log().indexed_upto(), 0u);
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
  // The index replica recovers by reading (sync-on-miss), so reads still work.
  LogRecordPtr latest;
  cluster.scheduler().Spawn(
      [](Cluster* cluster, LogRecordPtr* out) -> sim::Task<void> {
        *out = co_await cluster->node(0).log().ReadPrev("k:a", sharedlog::kMaxSeqNum);
      }(&cluster, &latest));
  cluster.scheduler().Run();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->fields.GetInt("step"), 3);
}

TEST(RecoveryTest, VolatileModeHasNoDurabilityMachinery) {
  ClusterConfig config = DurableConfig();
  config.durable = false;
  Cluster cluster(config);
  EXPECT_EQ(cluster.log_durability(), nullptr);
  EXPECT_EQ(cluster.kv_durability(), nullptr);
  EXPECT_EQ(cluster.DurableTrimBound(), sharedlog::kMaxSeqNum);
}

}  // namespace
}  // namespace halfmoon::runtime
