// Cluster-grain checkpoint recovery (DESIGN.md §14): after a checkpoint round, a whole-node
// crash-restart must come up through load-image + replay-suffix — bit-identical to the state
// a full replay would rebuild (pinned by an FNV-1a content checksum, like recovery_test) but
// touching only the journal suffix above the manifest's cut. Also covers the fallback chain
// (corrupt newest image -> previous manifest -> full replay), recovery idempotence, seqnum
// exactness across truncation, and HM_CHECKPOINT=0 bit-identity with the durable-only engine.
//
// The "[checkpoint] recovery: mode=image+suffix ..." lines printed here are load-bearing:
// scripts/check.sh greps them to prove the replay-suffix path actually engaged (a silent
// full-replay regression would still pass the equivalence checks).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/value.h"
#include "src/kvstore/kv_state.h"
#include "src/runtime/cluster.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/task.h"
#include "src/storage/checkpoint.h"
#include "src/storage/journal.h"

namespace halfmoon::runtime {
namespace {

using kvstore::VersionTuple;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::TagId;

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}
uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }
uint64_t FnvStr(uint64_t h, const std::string& s) { return FnvBytes(h, s.data(), s.size()); }

// Same content checksum as recovery_test: live tag streams with seqnums and field maps,
// the allocator position, the KV latest slots and version index.
uint64_t StateChecksum(Cluster& cluster, const std::vector<std::string>& kv_keys,
                       const std::vector<TagId>& objects) {
  uint64_t combined = 0;
  sharedlog::ShardedLog& log = cluster.log_space();
  for (TagId tag : log.LiveTagsWithPrefix("")) {
    uint64_t h = kFnvOffset;
    h = FnvStr(h, log.tags().Name(tag));
    for (const LogRecordPtr& record : log.ReadStreamUpTo(tag, sharedlog::kMaxSeqNum)) {
      h = FnvU64(h, record->seqnum);
      for (const auto& [key, field] : record->fields) {
        h = FnvStr(h, key);
        if (const int64_t* iv = std::get_if<int64_t>(&field)) {
          h = FnvU64(h, static_cast<uint64_t>(*iv));
        } else {
          h = FnvStr(h, std::get<std::string>(field));
        }
      }
    }
    combined ^= h;
  }
  uint64_t kv_hash = kFnvOffset;
  kv_hash = FnvU64(kv_hash, log.next_seqnum());
  for (const std::string& key : kv_keys) {
    kv_hash = FnvStr(kv_hash, key);
    auto value = cluster.kv_state().Get(key);
    kv_hash = FnvStr(kv_hash, value.has_value() ? *value : std::string("<missing>"));
    auto version = cluster.kv_state().GetVersion(key);
    kv_hash = FnvU64(kv_hash, version.has_value() ? version->cursor_ts : ~0ull);
    kv_hash = FnvU64(kv_hash, version.has_value() ? version->counter : ~0ull);
  }
  for (TagId object : objects) {
    kv_hash = FnvU64(kv_hash, object);
    kv_hash = FnvU64(kv_hash, cluster.kv_state().VersionCount(object));
  }
  return combined ^ kv_hash;
}

ClusterConfig CheckpointConfig() {
  ClusterConfig config;
  config.function_nodes = 2;
  config.workers_per_node = 4;
  config.durable = true;
  config.checkpoint = true;
  return config;
}

FieldMap Fields(const std::string& op, int64_t step) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", step);
  // Pad every record past a trivial size so a dozen of them span several 4KiB device blocks
  // — block-aligned journal truncation then genuinely frees device memory, which the
  // durable_bytes_dropped assertions below depend on.
  f.SetStr("pad", std::string(300, 'p'));
  return f;
}

// Long history, small live state: appends under two tags plus KV churn, then trims each tag
// down to its last records — exactly the shape where compaction wins.
sim::Task<void> PopulateWorkload(Cluster* cluster, int rounds) {
  sharedlog::LogClient& log = cluster->node(0).log();
  kvstore::KvClient& kv = cluster->node(0).kv();
  std::string pad(300, 'q');
  std::vector<SeqNum> a_seqs;
  for (int i = 0; i < rounds; ++i) {
    a_seqs.push_back(
        co_await log.Append(std::vector<std::string>(1, "k:a"), Fields("write", i)));
    co_await log.Append(std::vector<std::string>(1, "k:b"), Fields("write", i));
    co_await kv.Put("a", "va-" + std::to_string(i) + pad);
    co_await kv.PutVersioned(1, "v" + std::to_string(i), pad + std::to_string(i));
    if (i > 0) co_await kv.DeleteVersioned(1, "v" + std::to_string(i - 1));
  }
  co_await kv.CondPut("b", "vb", VersionTuple{3, 1});
  // Trim the history: only the last two k:a records stay live.
  if (a_seqs.size() > 2) {
    co_await log.Trim("k:a", a_seqs[a_seqs.size() - 3]);
  }
}

const std::vector<std::string> kKvKeys = {"a", "b"};
const std::vector<TagId> kObjects = {1};

// Runs one checkpoint round to completion on a drained cluster.
void CheckpointOnce(Cluster& cluster) {
  ASSERT_NE(cluster.checkpoint_service(), nullptr);
  ASSERT_TRUE(cluster.checkpoint_service()->TriggerRound());
  cluster.scheduler().Run();
  ASSERT_FALSE(cluster.checkpoint_service()->RoundInFlight());
}

void PrintRecovery(const char* what, const Cluster& cluster) {
  const sharedlog::LogRecoveryStats& log = cluster.last_log_recovery();
  const sharedlog::LogRecoveryStats& kv = cluster.last_kv_recovery();
  std::printf(
      "[checkpoint] recovery: %s log mode=%s image_frames=%lld suffix_frames=%lld "
      "rejected=%d | kv mode=%s image_frames=%lld suffix_frames=%lld\n",
      what, log.used_checkpoint ? "image+suffix" : "full-replay",
      static_cast<long long>(log.image_frames), static_cast<long long>(log.suffix_frames),
      log.manifests_rejected, kv.used_checkpoint ? "image+suffix" : "full-replay",
      static_cast<long long>(kv.image_frames), static_cast<long long>(kv.suffix_frames));
}

TEST(CheckpointRecoveryTest, ImagePlusSuffixMatchesFullReplayExactly) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 12));
  cluster.scheduler().Run();

  // Full-replay reference first (no checkpoint taken yet).
  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  EXPECT_FALSE(cluster.last_log_recovery().used_checkpoint);
  int64_t full_replay_frames = cluster.last_log_recovery().suffix_frames;
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);

  // Checkpoint, then keep running: the post-checkpoint ops form the replay suffix.
  CheckpointOnce(cluster);
  EXPECT_GT(cluster.checkpoint_service()->stats().rounds_completed, 0);
  EXPECT_GT(cluster.checkpoint_service()->stats().journal_bytes_truncated, 0);
  EXPECT_GT(cluster.log_durability()->retained_offset(), 0u);
  // The compaction satellite's core claim: the journal's device footprint actually shrank.
  EXPECT_GT(cluster.log_durability()->stats().durable_bytes_dropped, 0);
  EXPECT_GT(cluster.kv_durability()->stats().durable_bytes_dropped, 0);

  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 3));
  cluster.scheduler().Run();

  uint64_t acked = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  PrintRecovery("post-checkpoint", cluster);
  EXPECT_TRUE(cluster.last_log_recovery().used_checkpoint);
  EXPECT_TRUE(cluster.last_kv_recovery().used_checkpoint);
  EXPECT_GT(cluster.last_log_recovery().image_frames, 0);
  EXPECT_GT(cluster.last_kv_recovery().image_frames, 0);
  // The suffix is bounded by the post-checkpoint work, not the whole history.
  EXPECT_LT(cluster.last_log_recovery().suffix_frames, full_replay_frames);
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), acked);
}

TEST(CheckpointRecoveryTest, RecoveryIsIdempotentAndSeqnumExact) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 10));
  cluster.scheduler().Run();
  CheckpointOnce(cluster);
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 2));
  cluster.scheduler().Run();

  SeqNum next_before = cluster.log_space().next_seqnum();
  cluster.KillRestartStorage();
  uint64_t first = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  uint64_t second = StateChecksum(cluster, kKvKeys, kObjects);
  EXPECT_EQ(first, second);

  // Seqnum exactness across truncation: the restored allocator never re-issues a seqnum that
  // was acknowledged before the kill, even though the journal prefix holding most of the
  // history is gone.
  EXPECT_GE(cluster.log_space().next_seqnum(), next_before);
  std::vector<SeqNum> fresh;
  cluster.scheduler().Spawn(
      [](Cluster* cluster, std::vector<SeqNum>* out) -> sim::Task<void> {
        out->push_back(co_await cluster->node(0).log().Append(
            std::vector<std::string>(1, "k:a"), FieldMap()));
      }(&cluster, &fresh));
  cluster.scheduler().Run();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_GE(fresh[0], next_before);
}

TEST(CheckpointRecoveryTest, CorruptOnlyImageFallsBackToFullReplay) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 8));
  cluster.scheduler().Run();

  // The daemon dies right after stamping the manifest: the image is durable and valid, but
  // the journal was never truncated — full replay stays possible.
  cluster.failure_injector().CrashAtSite("ckpt.install", 0);
  ASSERT_TRUE(cluster.checkpoint_service()->TriggerRound());
  cluster.scheduler().Run();
  cluster.failure_injector().ClearCrashSchedule();
  EXPECT_EQ(cluster.checkpoint_service()->stats().rounds_abandoned, 1);
  EXPECT_EQ(cluster.log_durability()->retained_offset(), 0u);

  storage::InstalledManifest manifest;
  ASSERT_TRUE(storage::FindLatestValidManifest(*cluster.log_checkpoint_store(),
                                               storage::kCkptLogDomain, &manifest));
  cluster.log_checkpoint_store()->CorruptDurableByteForTest(manifest.manifest.image_start +
                                                            storage::kFrameHeaderBytes + 1);

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  PrintRecovery("corrupt-image", cluster);
  EXPECT_FALSE(cluster.last_log_recovery().used_checkpoint);
  EXPECT_EQ(cluster.last_log_recovery().manifests_rejected, 1);
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
}

TEST(CheckpointRecoveryTest, CorruptNewestImageFallsBackToThePreviousManifest) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 8));
  cluster.scheduler().Run();
  CheckpointOnce(cluster);  // Manifest 1: completes and truncates to cut 1.

  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 3));
  cluster.scheduler().Run();

  // Round 2 dies after its manifest: both manifests durable, journal still at cut 1.
  cluster.failure_injector().CrashAtSite("ckpt.install", 0);
  ASSERT_TRUE(cluster.checkpoint_service()->TriggerRound());
  cluster.scheduler().Run();
  cluster.failure_injector().ClearCrashSchedule();

  storage::InstalledManifest newest;
  ASSERT_TRUE(storage::FindLatestValidManifest(*cluster.log_checkpoint_store(),
                                               storage::kCkptLogDomain, &newest));
  cluster.log_checkpoint_store()->CorruptDurableByteForTest(newest.manifest.image_start +
                                                            storage::kFrameHeaderBytes + 1);

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  cluster.KillRestartStorage();
  PrintRecovery("fallback-previous", cluster);
  EXPECT_TRUE(cluster.last_log_recovery().used_checkpoint);
  EXPECT_EQ(cluster.last_log_recovery().manifests_rejected, 1);
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
}

TEST(CheckpointRecoveryTest, KillMidRoundAbandonsAndRecoversFromTheJournal) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 8));
  cluster.scheduler().Run();

  uint64_t before = StateChecksum(cluster, kKvKeys, kObjects);
  // The kill lands while the round is in flight (trigger, then restart without draining):
  // the round must die with the node, not stamp a manifest over post-recovery state.
  ASSERT_TRUE(cluster.checkpoint_service()->TriggerRound());
  cluster.KillRestartStorage();
  EXPECT_FALSE(cluster.checkpoint_service()->RoundInFlight());
  EXPECT_GT(cluster.checkpoint_service()->stats().rounds_abandoned, 0);
  cluster.scheduler().Run();  // The stale round's coroutine drains harmlessly.
  EXPECT_EQ(cluster.checkpoint_service()->stats().manifests_written, 0);
  EXPECT_EQ(StateChecksum(cluster, kKvKeys, kObjects), before);
}

TEST(CheckpointRecoveryTest, CheckpointOffIsBitIdenticalToTheDurableEngine) {
  // HM_CHECKPOINT=1 with no round triggered must not perturb the simulation: the service
  // draws from its own derived RNG stream and schedules nothing on its own. Same events,
  // same virtual clock, same state as the PR 9 durable-only engine.
  ClusterConfig plain = CheckpointConfig();
  plain.checkpoint = false;
  Cluster reference(plain);
  reference.scheduler().Spawn(PopulateWorkload(&reference, 10));
  reference.scheduler().Run();

  Cluster with_tier(CheckpointConfig());
  with_tier.scheduler().Spawn(PopulateWorkload(&with_tier, 10));
  with_tier.scheduler().Run();

  EXPECT_EQ(reference.checkpoint_service(), nullptr);
  EXPECT_NE(with_tier.checkpoint_service(), nullptr);
  EXPECT_EQ(with_tier.scheduler().events_processed(), reference.scheduler().events_processed());
  EXPECT_EQ(with_tier.scheduler().Now(), reference.scheduler().Now());
  EXPECT_EQ(StateChecksum(with_tier, kKvKeys, kObjects),
            StateChecksum(reference, kKvKeys, kObjects));

  // And recovery without the tier still full-replays identically.
  uint64_t before = StateChecksum(reference, kKvKeys, kObjects);
  reference.KillRestartStorage();
  PrintRecovery("checkpoint-off", reference);
  EXPECT_FALSE(reference.last_log_recovery().used_checkpoint);
  EXPECT_EQ(StateChecksum(reference, kKvKeys, kObjects), before);
}

TEST(CheckpointRecoveryTest, GcFrontierIsClampedWhileARoundIsInFlight) {
  Cluster cluster(CheckpointConfig());
  cluster.scheduler().Spawn(PopulateWorkload(&cluster, 6));
  cluster.scheduler().Run();

  EXPECT_EQ(cluster.CheckpointBound(), sharedlog::kMaxSeqNum);
  ASSERT_TRUE(cluster.checkpoint_service()->TriggerRound());
  // While the walk is pending, the bound fences GC at the round-start watermark.
  EXPECT_LE(cluster.CheckpointBound(), cluster.log_durability()->durable_seq() + 1);
  cluster.scheduler().Run();
  EXPECT_EQ(cluster.CheckpointBound(), sharedlog::kMaxSeqNum);
}

}  // namespace
}  // namespace halfmoon::runtime
