// Unit tests for the checkpoint tier (DESIGN.md §14): the manifest codec, newest-valid
// manifest selection with fallback past torn and corrupt images, prefix truncation of both
// the checkpoint store and the journal (the durable_bytes_dropped accounting), and the
// CheckpointService round machinery with its crash probes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/latency_model.h"
#include "src/sim/scheduler.h"
#include "src/storage/block_device.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"
#include "src/storage/journal.h"

namespace halfmoon::storage {
namespace {

// Writes an n-frame image plus its manifest (all durable) and returns the manifest.
CheckpointManifest WriteImage(CheckpointStore* store, uint8_t domain, int n, uint64_t cut,
                              uint64_t watermark = 0) {
  CheckpointManifest m;
  m.domain = domain;
  m.cut = cut;
  m.image_start = store->tail();
  m.watermark_floor = watermark;
  for (int i = 0; i < n; ++i) {
    std::string payload;
    PutU64(&payload, static_cast<uint64_t>(i));
    // Pad frames past a trivial size so a few of them span 4KiB device blocks and prefix
    // truncation genuinely frees device memory.
    payload.append(2048, 'i');
    store->AppendFrame(FrameType::kCkptRecord, payload);
  }
  store->Flush();
  m.frame_count = static_cast<uint64_t>(n);
  m.checksum = ChecksumImage(*store, m.image_start, store->tail());
  store->AppendFrame(FrameType::kCkptManifest, EncodeManifest(m));
  store->Flush();
  return m;
}

TEST(CheckpointManifestTest, CodecRoundTrips) {
  CheckpointManifest m;
  m.domain = kCkptKvDomain;
  m.cut = 0xAABB;
  m.image_start = 0x1122;
  m.frame_count = 7;
  m.checksum = 0xDEADBEEFCAFEF00Dull;
  m.watermark_floor = 41;
  std::string payload = EncodeManifest(m);
  CheckpointManifest back = DecodeManifest(Cursor(payload));
  EXPECT_EQ(back.domain, m.domain);
  EXPECT_EQ(back.cut, m.cut);
  EXPECT_EQ(back.image_start, m.image_start);
  EXPECT_EQ(back.frame_count, m.frame_count);
  EXPECT_EQ(back.checksum, m.checksum);
  EXPECT_EQ(back.watermark_floor, m.watermark_floor);
}

TEST(CheckpointStoreTest, FindsTheNewestValidManifestOfTheDomain) {
  CheckpointStore store;
  InstalledManifest found;
  EXPECT_FALSE(FindLatestValidManifest(store, kCkptLogDomain, &found));
  WriteImage(&store, kCkptLogDomain, 3, /*cut=*/100);
  CheckpointManifest kv = WriteImage(&store, kCkptKvDomain, 2, /*cut=*/50);
  CheckpointManifest newest = WriteImage(&store, kCkptLogDomain, 5, /*cut=*/200, 9);

  ASSERT_TRUE(FindLatestValidManifest(store, kCkptLogDomain, &found));
  EXPECT_EQ(found.manifest.cut, newest.cut);
  EXPECT_EQ(found.manifest.frame_count, 5u);
  EXPECT_EQ(found.manifest.watermark_floor, 9u);

  // Domains are independent: the kv manifest is found even though a newer log one exists.
  InstalledManifest kv_found;
  ASSERT_TRUE(FindLatestValidManifest(store, kCkptKvDomain, &kv_found));
  EXPECT_EQ(kv_found.manifest.cut, kv.cut);

  int frames = 0;
  ReplayImage(store, found, [&](FrameType type, Cursor) {
    EXPECT_EQ(type, FrameType::kCkptRecord);
    ++frames;
  });
  EXPECT_EQ(frames, 5);
}

TEST(CheckpointStoreTest, CorruptNewestImageFallsBackToThePrevious) {
  CheckpointStore store;
  CheckpointManifest older = WriteImage(&store, kCkptLogDomain, 3, /*cut=*/100);
  CheckpointManifest newest = WriteImage(&store, kCkptLogDomain, 4, /*cut=*/200);

  // A latent media error inside the newest image region: the checksum must catch it and
  // recovery must fall back to the older manifest instead of installing garbage.
  store.CorruptDurableByteForTest(newest.image_start + kFrameHeaderBytes + 2);
  InstalledManifest found;
  int rejected = 0;
  ASSERT_TRUE(FindLatestValidManifest(store, kCkptLogDomain, &found, &rejected));
  EXPECT_EQ(found.manifest.cut, older.cut);
  EXPECT_EQ(rejected, 1);
}

TEST(CheckpointStoreTest, UnflushedManifestDiesWithTheVolatileTail) {
  CheckpointStore store;
  CheckpointManifest m;
  m.domain = kCkptLogDomain;
  m.image_start = store.tail();
  store.AppendFrame(FrameType::kCkptRecord, "xxxx");
  store.Flush();
  m.frame_count = 1;
  m.cut = 10;
  m.checksum = ChecksumImage(store, m.image_start, store.tail());
  store.AppendFrame(FrameType::kCkptManifest, EncodeManifest(m));
  store.DropVolatile();  // Crash before the manifest flush: the round never happened.

  InstalledManifest found;
  EXPECT_FALSE(FindLatestValidManifest(store, kCkptLogDomain, &found));
}

TEST(CheckpointStoreTest, TruncatedImageRegionIsRejected) {
  CheckpointStore store;
  WriteImage(&store, kCkptLogDomain, 3, /*cut=*/100);
  CheckpointManifest newest = WriteImage(&store, kCkptLogDomain, 4, /*cut=*/200);
  // Normal post-round housekeeping: release everything below the newest image.
  store.TruncatePrefix(newest.image_start);
  EXPECT_GT(store.device().stats().bytes_dropped, 0);

  InstalledManifest found;
  ASSERT_TRUE(FindLatestValidManifest(store, kCkptLogDomain, &found));
  EXPECT_EQ(found.manifest.cut, newest.cut);

  // Now corrupt the only surviving image: the older manifest (and its region) went with the
  // truncated prefix, so recovery must report "no valid manifest" rather than resurrect a
  // truncated image — the one remaining candidate is rejected by its checksum.
  store.CorruptDurableByteForTest(newest.image_start + kFrameHeaderBytes + 1);
  int rejected = 0;
  EXPECT_FALSE(FindLatestValidManifest(store, kCkptLogDomain, &found, &rejected));
  EXPECT_EQ(rejected, 1);
}

TEST(DurabilityTruncationTest, TruncateToReleasesThePrefixAndCountsDroppedBytes) {
  sim::Scheduler scheduler;
  LatencyModels models;
  DurabilityService service(&scheduler, &models, /*seed=*/1);
  // Enough frames to span several blocks so truncation genuinely frees device memory.
  std::string big(1024, 'x');
  uint64_t mid = 0;
  for (int i = 0; i < 64; ++i) {
    std::string payload;
    PutU64(&payload, static_cast<uint64_t>(i));
    PutStr(&payload, big);
    uint64_t end = service.AppendFrame(FrameType::kRecord, payload);
    if (i == 31) mid = end;
  }
  scheduler.Run();
  ASSERT_EQ(service.durable_offset(), service.tail_offset());
  uint64_t resident_before = service.device().resident_bytes();

  service.TruncateTo(mid);
  EXPECT_EQ(service.retained_offset(), mid);
  EXPECT_GT(service.stats().durable_bytes_dropped, 0);
  // The journal's device footprint actually shrank (the compaction satellite's core claim).
  EXPECT_LT(service.device().resident_bytes(), resident_before);
  EXPECT_EQ(service.stats().durable_bytes_dropped, service.device().stats().bytes_dropped);

  // Replay now starts at the truncation point: exactly the surviving frames remain.
  std::vector<uint64_t> seen;
  service.Replay([&](FrameType, Cursor cursor) { seen.push_back(cursor.U64()); });
  ASSERT_EQ(seen.size(), 32u);
  EXPECT_EQ(seen.front(), 32u);
  EXPECT_EQ(seen.back(), 63u);
}

TEST(CheckpointServiceTest, RoundWalksStampsTruncatesAndReportsStats) {
  sim::Scheduler scheduler;
  LatencyModels models;
  DurabilityService journal(&scheduler, &models, /*seed=*/3);
  CheckpointStore store;
  CheckpointService service(&scheduler, &models, /*seed=*/3);

  // A toy target: "live state" is a vector of values; the journal holds their history.
  std::vector<uint64_t> live;
  for (uint64_t i = 0; i < 20; ++i) {
    std::string payload;
    PutU64(&payload, i);
    journal.NoteCommit(i + 1, journal.AppendFrame(FrameType::kRecord, payload));
    live.assign(1, i);  // Only the newest value is live.
  }
  scheduler.Run();

  size_t cursor = 0;
  service.AddTarget(CheckpointService::Target{
      .domain = kCkptLogDomain,
      .journal = &journal,
      .store = &store,
      .begin_walk = [&] { cursor = 0; },
      .write_slice =
          [&](CheckpointStore* s, int64_t budget, int64_t* frames) {
            for (int64_t used = 0; cursor < live.size(); ++used, ++cursor) {
              if (used >= budget) return false;
              std::string payload;
              PutU64(&payload, live[cursor]);
              s->AppendFrame(FrameType::kCkptRecord, payload);
              ++*frames;
            }
            return true;
          },
      .watermark_floor = [&] { return journal.durable_seq(); },
  });

  uint64_t journal_size_before = journal.device().resident_bytes();
  EXPECT_TRUE(service.TriggerRound());
  EXPECT_FALSE(service.TriggerRound());  // One round in flight at a time.
  EXPECT_LT(service.CheckpointBound(), ~0ull);  // GC fenced while the round walks.
  scheduler.Run();

  EXPECT_EQ(service.stats().rounds_completed, 1);
  EXPECT_EQ(service.stats().manifests_written, 1);
  EXPECT_EQ(service.stats().image_frames, 1);
  EXPECT_GT(service.stats().journal_bytes_truncated, 0);
  EXPECT_LE(journal.device().resident_bytes(), journal_size_before);
  EXPECT_GT(journal.retained_offset(), 0u);

  InstalledManifest found;
  ASSERT_TRUE(FindLatestValidManifest(store, kCkptLogDomain, &found));
  EXPECT_EQ(found.manifest.cut, journal.retained_offset());
  EXPECT_EQ(found.manifest.watermark_floor, 20u);
  EXPECT_EQ(service.CheckpointBound(), ~0ull);  // Idle again: GC unfenced.
}

TEST(CheckpointServiceTest, CrashProbeAbandonsTheRound) {
  sim::Scheduler scheduler;
  LatencyModels models;
  DurabilityService journal(&scheduler, &models, /*seed=*/5);
  CheckpointStore store;
  CheckpointService service(&scheduler, &models, /*seed=*/5);
  std::string payload;
  PutU64(&payload, 1);
  journal.NoteCommit(1, journal.AppendFrame(FrameType::kRecord, payload));
  scheduler.Run();

  service.AddTarget(CheckpointService::Target{
      .domain = kCkptLogDomain,
      .journal = &journal,
      .store = &store,
      .begin_walk = [] {},
      .write_slice =
          [&](CheckpointStore* s, int64_t, int64_t* frames) {
            s->AppendFrame(FrameType::kCkptRecord, "vv");
            ++*frames;
            return true;
          },
      .watermark_floor = [&] { return journal.durable_seq(); },
  });
  service.InstallCrashProbe([](const char* site) {
    return std::string_view(site) == "ckpt.write";
  });

  EXPECT_TRUE(service.TriggerRound());
  scheduler.Run();
  EXPECT_EQ(service.stats().rounds_abandoned, 1);
  EXPECT_EQ(service.stats().rounds_completed, 0);
  EXPECT_EQ(service.stats().manifests_written, 0);
  // The dead slice's bytes evaporated with the volatile tail: nothing durable, no manifest.
  EXPECT_EQ(store.durable(), 0u);
  EXPECT_EQ(journal.retained_offset(), 0u);  // And the journal was never truncated.

  // The next round (no probe hit) completes: abandonment is not sticky.
  service.InstallCrashProbe(nullptr);
  EXPECT_TRUE(service.TriggerRound());
  scheduler.Run();
  EXPECT_EQ(service.stats().rounds_completed, 1);
}

}  // namespace
}  // namespace halfmoon::storage
