// Unit tests for the simulated storage engine (DESIGN.md §13): the block device's whole-block
// accounting, the buffer cache's flush/drop semantics, the journal frame codec (including
// torn-tail skipping), and the durability service's group-flush, waiter, callback, and kill
// behavior.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/latency_model.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/storage/block_buffer.h"
#include "src/storage/block_device.h"
#include "src/storage/durability.h"
#include "src/storage/journal.h"

namespace halfmoon::storage {
namespace {

TEST(BlockDeviceTest, PaysWholeBlocksForPartialWrites) {
  BlockDevice device;
  device.WriteBlocks(0, "hello");
  EXPECT_EQ(device.stats().block_writes, 1);
  EXPECT_EQ(device.stats().bytes_written, static_cast<int64_t>(kBlockSize));
  EXPECT_EQ(device.Read(0, 5), "hello");

  // A write spanning two blocks pays for two.
  std::string big(kBlockSize + 1, 'x');
  device.WriteBlocks(0, big);
  EXPECT_EQ(device.stats().block_writes, 3);
}

TEST(BlockBufferTest, FlushMovesTheDurableFrontierAndDropKeepsIt) {
  BlockDevice device;
  BlockBuffer buffer(&device);
  uint64_t a = buffer.Append("aaaa");
  uint64_t b = buffer.Append("bbbb");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(buffer.durable(), 0u);
  EXPECT_EQ(buffer.tail(), 8u);

  buffer.FlushTo(4);
  EXPECT_EQ(buffer.durable(), 4u);
  EXPECT_EQ(buffer.ReadDurable(0, 4), "aaaa");

  buffer.DropVolatile();
  EXPECT_EQ(buffer.tail(), 4u);
  EXPECT_EQ(buffer.durable(), 4u);
  EXPECT_EQ(buffer.ReadDurable(0, 4), "aaaa");
}

TEST(BlockBufferTest, PartialTailBlockIsRewrittenEachFlush) {
  // Two small flushes land in the same 4 KiB block: the second rewrites it — the small-write
  // amplification the group-flusher exists to amortize.
  BlockDevice device;
  BlockBuffer buffer(&device);
  buffer.Append("aaaa");
  buffer.FlushTo(4);
  buffer.Append("bbbb");
  buffer.FlushTo(8);
  EXPECT_EQ(device.stats().block_writes, 2);
  EXPECT_EQ(buffer.ReadDurable(0, 8), "aaaabbbb");
}

TEST(JournalCodecTest, PrimitivesRoundTrip) {
  std::string payload;
  PutU8(&payload, 7);
  PutU32(&payload, 0xDEADBEEF);
  PutU64(&payload, 0x0123456789ABCDEFull);
  PutStr(&payload, "version-id");
  Cursor cursor(payload);
  EXPECT_EQ(cursor.U8(), 7);
  EXPECT_EQ(cursor.U32(), 0xDEADBEEFu);
  EXPECT_EQ(cursor.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(cursor.Str(), "version-id");
  EXPECT_TRUE(cursor.empty());
}

TEST(JournalCodecTest, ReplayYieldsWholeFramesAndSkipsTornTail) {
  BlockDevice device;
  BlockBuffer buffer(&device);
  std::string first;
  PutU64(&first, 41);
  AppendFrame(&buffer, FrameType::kRecord, first);
  std::string second;
  PutU64(&second, 42);
  uint64_t end = AppendFrame(&buffer, FrameType::kTrim, second);

  // Flush to one byte short of the second frame's end: it is torn and must be skipped.
  buffer.FlushTo(end - 1);
  std::vector<uint64_t> seen;
  ReplayFrames(buffer, buffer.durable(), [&](FrameType type, Cursor cursor) {
    EXPECT_EQ(type, FrameType::kRecord);
    seen.push_back(cursor.U64());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 41u);

  // Completing the flush makes the second frame whole.
  buffer.FlushTo(end);
  seen.clear();
  ReplayFrames(buffer, buffer.durable(),
               [&](FrameType, Cursor cursor) { seen.push_back(cursor.U64()); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{41, 42}));
}

// --- DurabilityService ---

struct ServiceFixture {
  sim::Scheduler scheduler;
  LatencyModels models;
  DurabilityService service{&scheduler, &models, /*seed=*/1};
};

sim::Task<void> AwaitSeq(DurabilityService* svc, uint64_t seqnum, bool* ok, bool* done) {
  *ok = co_await svc->WaitSeq(seqnum);
  *done = true;
}

sim::Task<void> AwaitOffset(DurabilityService* svc, uint64_t offset, bool* ok, bool* done) {
  *ok = co_await svc->WaitOffset(offset);
  *done = true;
}

TEST(DurabilityServiceTest, WaitSeqResumesTrueOnceFlushed) {
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  uint64_t end = fx.service.AppendFrame(FrameType::kRecord, payload);
  fx.service.NoteCommit(1, end);

  bool ok = false, done = false;
  fx.scheduler.Spawn(AwaitSeq(&fx.service, 1, &ok, &done));
  fx.scheduler.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(fx.service.durable_seq(), 1u);
  EXPECT_GE(fx.service.stats().flushes, 1);
  EXPECT_TRUE(fx.service.SeqDurable(1));
}

TEST(DurabilityServiceTest, GroupFlushCoalescesManyAppends) {
  // All appends land before the first flush's latency elapses, so one or two flush rounds
  // absorb all of them (frames appended mid-flush ride the next round).
  ServiceFixture fx;
  for (uint64_t i = 1; i <= 64; ++i) {
    std::string payload;
    PutU64(&payload, i);
    fx.service.NoteCommit(i, fx.service.AppendFrame(FrameType::kRecord, payload));
  }
  fx.scheduler.Run();
  EXPECT_EQ(fx.service.durable_seq(), 64u);
  EXPECT_EQ(fx.service.stats().frames, 64);
  EXPECT_LE(fx.service.stats().flushes, 2);
}

TEST(DurabilityServiceTest, WhenDurableFiresSynchronouslyOnceDurable) {
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  fx.service.NoteCommit(1, fx.service.AppendFrame(FrameType::kRecord, payload));

  int fired = 0;
  fx.service.WhenDurable(1, [&] { ++fired; });
  EXPECT_EQ(fired, 0);  // Not durable yet: deferred.
  fx.scheduler.Run();
  EXPECT_EQ(fired, 1);
  fx.service.WhenDurable(1, [&] { ++fired; });
  EXPECT_EQ(fired, 2);  // Already durable: synchronous.
}

TEST(DurabilityServiceTest, KillFailsWaitersDropsCallbacksAndKeepsDurablePrefix) {
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  fx.service.NoteCommit(1, fx.service.AppendFrame(FrameType::kRecord, payload));
  fx.scheduler.Run();  // Seq 1 durable.

  PutU64(&payload, 2);
  fx.service.NoteCommit(2, fx.service.AppendFrame(FrameType::kRecord, payload));
  bool ok = true, done = false;
  fx.scheduler.Spawn(AwaitSeq(&fx.service, 2, &ok, &done));
  int fired = 0;
  fx.service.WhenDurable(2, [&] { ++fired; });
  fx.service.Kill();  // Before the flush latency elapses.
  fx.scheduler.Run();

  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);  // The waiter saw the kill, not a bogus success.
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(fx.service.stats().kills, 1);
  EXPECT_EQ(fx.service.stats().failed_waits, 1);
  EXPECT_EQ(fx.service.stats().dropped_callbacks, 1);
  // The durable prefix survives: replay still sees seq 1.
  EXPECT_EQ(fx.service.durable_seq(), 1u);
  int frames = 0;
  fx.service.Replay([&](FrameType, Cursor) { ++frames; });
  EXPECT_EQ(frames, 1);
}

TEST(DurabilityServiceTest, WaitersRegisteredAfterAKillFailFast) {
  // A kill between the mutation and the co_await: the awaited seqnum/offset is beyond every
  // pending commit / the journal tail, so the waiter must resume false immediately instead of
  // suspending forever (or matching a reused seqnum later).
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  uint64_t end = fx.service.AppendFrame(FrameType::kRecord, payload);
  fx.service.NoteCommit(1, end);
  fx.service.Kill();

  bool seq_ok = true, seq_done = false;
  fx.scheduler.Spawn(AwaitSeq(&fx.service, 1, &seq_ok, &seq_done));
  bool off_ok = true, off_done = false;
  fx.scheduler.Spawn(AwaitOffset(&fx.service, end, &off_ok, &off_done));
  fx.scheduler.Run();
  EXPECT_TRUE(seq_done);
  EXPECT_FALSE(seq_ok);
  EXPECT_TRUE(off_done);
  EXPECT_FALSE(off_ok);
  EXPECT_EQ(fx.service.stats().failed_waits, 2);
}

TEST(DurabilityServiceTest, SeqnumsMayBeReusedAfterAKill) {
  // The log allocator rolls back to the durable watermark on restart, so post-kill commits
  // reuse the wiped seqnums; the commit bookkeeping must accept them.
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  fx.service.NoteCommit(1, fx.service.AppendFrame(FrameType::kRecord, payload));
  fx.scheduler.Run();  // Seq 1 durable.

  PutU64(&payload, 2);
  fx.service.NoteCommit(2, fx.service.AppendFrame(FrameType::kRecord, payload));
  fx.service.Kill();  // Seq 2 wiped.

  std::string retry;
  PutU64(&retry, 2);
  fx.service.NoteCommit(2, fx.service.AppendFrame(FrameType::kRecord, retry));
  bool ok = false, done = false;
  fx.scheduler.Spawn(AwaitSeq(&fx.service, 2, &ok, &done));
  fx.scheduler.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(fx.service.durable_seq(), 2u);
}

TEST(DurabilityServiceTest, ReportsWriteAmplification) {
  ServiceFixture fx;
  std::string payload;
  PutU64(&payload, 1);
  fx.service.NoteCommit(1, fx.service.AppendFrame(FrameType::kRecord, payload));
  fx.scheduler.Run();
  // A ~13-byte frame cost a 4 KiB block write: amplification far above 1.
  EXPECT_GT(fx.service.WriteAmplification(), 1.0);
}

}  // namespace
}  // namespace halfmoon::storage
