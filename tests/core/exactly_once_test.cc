// Exactly-once property tests (§1, §2).
//
// Strategy: run a workload once with the failure injector in counting mode to enumerate every
// crash site it passes through, then re-run the *same* workload once per site with a scheduled
// crash exactly there. No matter where the SSF dies — between a DB write and its log record,
// after a callee returns but before the result is logged, ... — the retried execution must
// leave the external state exactly as a single crash-free execution would.
//
// The unsafe baseline is the negative control: the same sweep must produce at least one
// anomalous state, proving the harness can actually detect duplicate updates.

#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/env.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

constexpr int kIncrements = 3;

void RegisterCounterWorkload(TestWorld& world) {
  world.runtime().PopulateObject("counter", EncodeInt64(0));
  world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    int64_t n = DecodeInt64(v);
    co_await ctx.Compute();
    co_await ctx.Write("counter", EncodeInt64(n + 1));
    co_return EncodeInt64(n + 1);
  });
  world.Register("read_counter", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("counter");
  });
}

// Runs kIncrements serial increments, then reads the counter with injection disabled.
int64_t RunCounterWorkload(TestWorld& world, int64_t* sites_after_increments = nullptr) {
  for (int i = 0; i < kIncrements; ++i) {
    world.Call("incr");
  }
  if (sites_after_increments != nullptr) {
    *sites_after_increments = world.cluster().failure_injector().site_hits();
  }
  world.cluster().failure_injector().SetCrashProbability(0.0);
  world.cluster().failure_injector().CrashAtSiteHits({});
  return DecodeInt64(world.Call("read_counter"));
}

// Counts the crash sites a crash-free run of the increment phase passes through (the final
// verification read runs with injection disabled, so its sites are excluded).
int64_t CountCrashSites(ProtocolKind kind) {
  TestWorldOptions options;
  options.protocol = kind;
  TestWorld world(options);
  RegisterCounterWorkload(world);
  int64_t sites = 0;
  RunCounterWorkload(world, &sites);
  return sites;
}

class ExactlyOnceTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(FaultTolerantProtocols, ExactlyOnceTest,
                         ::testing::Values(ProtocolKind::kBoki, ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(ExactlyOnceTest, CounterSurvivesCrashAtEverySite) {
  const int64_t sites = CountCrashSites(GetParam());
  ASSERT_GT(sites, 0);
  for (int64_t k = 0; k < sites; ++k) {
    TestWorldOptions options;
    options.protocol = GetParam();
    TestWorld world(options);
    RegisterCounterWorkload(world);
    world.cluster().failure_injector().CrashAtSiteHits({k});
    int64_t final_count = RunCounterWorkload(world);
    EXPECT_EQ(final_count, kIncrements)
        << "crash at site " << k << " of " << sites << " broke exactly-once";
    EXPECT_GE(world.runtime().stats().crashes, 1) << "site " << k << " never crashed";
  }
}

TEST_P(ExactlyOnceTest, CounterSurvivesCrashPairsAtEverySecondSite) {
  // Double faults: the retry itself crashes again at a later site.
  const int64_t sites = CountCrashSites(GetParam());
  for (int64_t k = 0; k < sites; k += 2) {
    TestWorldOptions options;
    options.protocol = GetParam();
    TestWorld world(options);
    RegisterCounterWorkload(world);
    world.cluster().failure_injector().CrashAtSiteHits({k, k + 3});
    int64_t final_count = RunCounterWorkload(world);
    EXPECT_EQ(final_count, kIncrements) << "crash pair {" << k << "," << k + 3 << "} broke "
                                        << "exactly-once";
  }
}

TEST_P(ExactlyOnceTest, CounterSurvivesRandomCrashStorms) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TestWorldOptions options;
    options.protocol = GetParam();
    options.seed = seed;
    TestWorld world(options);
    RegisterCounterWorkload(world);
    world.cluster().failure_injector().SetCrashProbability(0.08);
    int64_t final_count = RunCounterWorkload(world);
    EXPECT_EQ(final_count, kIncrements) << "seed " << seed;
  }
}

TEST_P(ExactlyOnceTest, BranchingLogicReplaysDeterministically) {
  // Reads steer control flow (§2: "writes and the branching of SSF logic may arbitrarily
  // depend on read results"). After a crash the retry must take the same branch, not leave
  // effects on both branches.
  const ProtocolKind kind = GetParam();
  auto register_brancher = [](TestWorld& world) {
    world.runtime().PopulateObject("selector", "a");
    world.runtime().PopulateObject("out-a", EncodeInt64(0));
    world.runtime().PopulateObject("out-b", EncodeInt64(0));
    world.Register("branch", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value sel = co_await ctx.Read("selector");
      // Flip the selector, then bump the branch matching the *previous* value.
      co_await ctx.Write("selector", sel == "a" ? "b" : "a");
      std::string out = sel == "a" ? "out-a" : "out-b";
      Value v = co_await ctx.Read(out);
      co_await ctx.Write(out, EncodeInt64(DecodeInt64(v) + 1));
      co_return sel;
    });
    world.Register("read2", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value a = co_await ctx.Read("out-a");
      Value b = co_await ctx.Read("out-b");
      co_return a + "," + b;
    });
  };

  // Count sites.
  int64_t sites;
  {
    TestWorldOptions options;
    options.protocol = kind;
    TestWorld world(options);
    register_brancher(world);
    world.Call("branch");
    world.Call("branch");
    sites = world.cluster().failure_injector().site_hits();
  }
  for (int64_t k = 0; k < sites; ++k) {
    TestWorldOptions options;
    options.protocol = kind;
    TestWorld world(options);
    register_brancher(world);
    world.cluster().failure_injector().CrashAtSiteHits({k});
    world.Call("branch");
    world.Call("branch");
    world.cluster().failure_injector().CrashAtSiteHits({});
    // Two alternating invocations: each branch bumped exactly once.
    EXPECT_EQ(world.Call("read2"), "1,1") << "crash at site " << k;
  }
}

TEST_P(ExactlyOnceTest, WorkflowWithInvokeSurvivesCrashSweep) {
  // A two-level workflow: the parent invokes "add" twice. Crashes around the invoke logs
  // (after the callee ran, before the result was logged, ...) must not double-apply the
  // callee's effects.
  const ProtocolKind kind = GetParam();
  auto register_workflow = [](TestWorld& world) {
    world.runtime().PopulateObject("acc", EncodeInt64(0));
    world.Register("add", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value v = co_await ctx.Read("acc");
      int64_t n = DecodeInt64(v) + DecodeInt64(ctx.input());
      co_await ctx.Write("acc", EncodeInt64(n));
      co_return EncodeInt64(n);
    });
    world.Register("parent", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_await ctx.Invoke("add", EncodeInt64(1));
      Value r = co_await ctx.Invoke("add", EncodeInt64(10));
      co_return r;
    });
    world.Register("read_acc", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_return co_await ctx.Read("acc");
    });
  };

  int64_t sites;
  {
    TestWorldOptions options;
    options.protocol = kind;
    TestWorld world(options);
    register_workflow(world);
    world.Call("parent");
    sites = world.cluster().failure_injector().site_hits();
  }
  ASSERT_GT(sites, 0);
  for (int64_t k = 0; k < sites; ++k) {
    TestWorldOptions options;
    options.protocol = kind;
    TestWorld world(options);
    register_workflow(world);
    world.cluster().failure_injector().CrashAtSiteHits({k});
    Value result = world.Call("parent");
    world.cluster().failure_injector().CrashAtSiteHits({});
    EXPECT_EQ(DecodeInt64(result), 11) << "crash at site " << k;
    EXPECT_EQ(DecodeInt64(world.Call("read_acc")), 11) << "crash at site " << k;
  }
}

// ---- Negative control ----

TEST(UnsafeAnomalyTest, CrashSweepProducesDuplicateUpdates) {
  int64_t sites;
  {
    TestWorldOptions options;
    options.protocol = ProtocolKind::kUnsafe;
    TestWorld world(options);
    RegisterCounterWorkload(world);
    RunCounterWorkload(world);
    sites = world.cluster().failure_injector().site_hits();
  }
  ASSERT_GT(sites, 0);
  int anomalies = 0;
  for (int64_t k = 0; k < sites; ++k) {
    TestWorldOptions options;
    options.protocol = ProtocolKind::kUnsafe;
    TestWorld world(options);
    RegisterCounterWorkload(world);
    world.cluster().failure_injector().CrashAtSiteHits({k});
    if (RunCounterWorkload(world) != kIncrements) ++anomalies;
  }
  // Retrying after a crash that followed the DB write duplicates the increment: the harness
  // must observe that at least once, or it could not be trusted to validate the protocols.
  EXPECT_GT(anomalies, 0);
}

}  // namespace
}  // namespace halfmoon
