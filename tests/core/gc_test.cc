// Garbage collection tests (§4.5): versions and log records are reclaimed once no running or
// future SSF can observe them, and never earlier.

#include <gtest/gtest.h>

#include "src/core/gc_service.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::GcService;
using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

TestWorldOptions HmRead() {
  TestWorldOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  return options;
}

void RegisterWriter(TestWorld& world) {
  world.Register("write_k", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("k", ctx.input());
    co_return "";
  });
  world.Register("read_k", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("k");
  });
}

TEST(GcTest, ReclaimsSupersededVersionsAndWriteRecords) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  for (int i = 0; i < 10; ++i) {
    world.Call("write_k", "v" + std::to_string(i));
  }
  ASSERT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("k")), 10u);

  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();

  // All SSFs have finished: only the newest version (pointed to by the marked record) stays.
  EXPECT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("k")), 1u);
  EXPECT_EQ(gc.stats().versions_deleted, 9);
  EXPECT_GE(gc.stats().write_records_trimmed, 9);
}

TEST(GcTest, ReadsStillCorrectAfterGc) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  for (int i = 0; i < 5; ++i) {
    world.Call("write_k", "v" + std::to_string(i));
  }
  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  EXPECT_EQ(world.Call("read_k"), "v4");
}

TEST(GcTest, TrimsStepLogsOfFinishedWorkflows) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  for (int i = 0; i < 6; ++i) {
    world.Call("write_k", "v");
  }
  size_t before = world.cluster().log_space().live_records();
  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  size_t after = world.cluster().log_space().live_records();
  EXPECT_LT(after, before);
  EXPECT_EQ(gc.stats().step_logs_trimmed, 6);
  // Only the marked write record (the newest commit) should still be live, since every
  // init/step record belongs to a finished workflow.
  EXPECT_LE(after, 2u);
}

TEST(GcTest, StatsCountExactRecordsNotScans) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  for (int i = 0; i < 6; ++i) world.Call("write_k", "v");
  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  // Six root invocations → exactly six init records trimmed (one per init append) and six
  // step logs trimmed. init_records_trimmed used to count *scans* with a nonzero frontier,
  // so a busy run with one scan reported 1 regardless of how many records it reclaimed.
  EXPECT_EQ(gc.stats().init_records_trimmed, 6);
  EXPECT_EQ(gc.stats().step_logs_trimmed, 6);
  // A second scan with nothing left to reclaim must not inflate either counter.
  gc.RunOnce();
  EXPECT_EQ(gc.stats().scans, 2);
  EXPECT_EQ(gc.stats().init_records_trimmed, 6);
  EXPECT_EQ(gc.stats().step_logs_trimmed, 6);
}

TEST(GcTest, UnsafeInstancesDoNotCountAsTrimmedStepLogs) {
  // Unsafe SSFs never log: no init record, no step stream. The trim queue still carries their
  // instance ids, but step_logs_trimmed used to count every queue entry whether or not a
  // stream existed.
  TestWorldOptions options;
  options.protocol = ProtocolKind::kUnsafe;
  TestWorld world(options);
  RegisterWriter(world);
  for (int i = 0; i < 4; ++i) world.Call("write_k", "v");
  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  EXPECT_EQ(gc.stats().step_logs_trimmed, 0);
  EXPECT_EQ(gc.stats().init_records_trimmed, 0);
}

TEST(GcTest, TrimsReadLogsUnderHalfmoonWrite) {
  TestWorldOptions options;
  options.protocol = ProtocolKind::kHalfmoonWrite;
  TestWorld world(options);
  world.runtime().PopulateObject("k", "v");
  world.Register("reads", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 5; ++i) co_await ctx.Read("k");
    co_return "";
  });
  for (int i = 0; i < 4; ++i) world.Call("reads");
  int64_t bytes_before = world.cluster().log_space().CurrentBytes();
  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  // Read-log records live exactly as long as the initiating SSF (§4.5): all are gone.
  EXPECT_LT(world.cluster().log_space().CurrentBytes(), bytes_before / 4);
}

TEST(GcTest, KeepsVersionsVisibleToRunningSsfs) {
  // An SSF that started before later writes must still find its version after a GC scan.
  TestWorld world(HmRead());
  RegisterWriter(world);
  world.Call("write_k", "old");

  // Start a slow reader that initializes, then stalls before reading (~50 ms of compute).
  world.Register("slow_read", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 1000; ++i) co_await ctx.Compute();
    co_return co_await ctx.Read("k");
  });

  Value slow_result;
  bool slow_done = false;
  world.CallAsync("slow_read", "", &slow_result, &slow_done);
  // Let the reader get through Init but not the read.
  world.scheduler().RunUntil(world.scheduler().Now() + Milliseconds(5));

  // Now write twice more and run GC while the reader is still in flight.
  world.CallAsync("write_k", "new1");
  world.CallAsync("write_k", "new2");
  world.scheduler().RunUntil(world.scheduler().Now() + Milliseconds(30));

  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();

  world.scheduler().Run();
  ASSERT_TRUE(slow_done);
  // The reader's cursor decides which version it sees; whichever it is, the version must have
  // survived GC (the Read CHECKs this internally) and be one of the committed values.
  EXPECT_TRUE(slow_result == "old" || slow_result == "new1" || slow_result == "new2")
      << slow_result;
}

TEST(GcTest, FrontierBlocksCollectionWhileSsfRuns) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  world.Register("sleeper", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 3000; ++i) co_await ctx.Compute();  // ~150 ms of local compute.
    co_return "";
  });
  bool sleeper_done = false;
  world.CallAsync("sleeper", "", nullptr, &sleeper_done);
  world.scheduler().RunUntil(world.scheduler().Now() + Milliseconds(4));

  // Writes land while the sleeper runs.
  world.CallAsync("write_k", "a");
  world.CallAsync("write_k", "b");
  world.scheduler().RunUntil(world.scheduler().Now() + Milliseconds(30));
  ASSERT_FALSE(sleeper_done);

  GcService gc(&world.cluster(), Seconds(10));
  gc.RunOnce();
  // The sleeper began before both writes, so its init bounds the frontier: both versions of
  // "k" must survive this scan.
  EXPECT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("k")), 2u);

  world.scheduler().Run();
  EXPECT_TRUE(sleeper_done);
  gc.RunOnce();
  EXPECT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("k")), 1u);
}

TEST(GcTest, PeriodicLoopRunsOnSchedule) {
  TestWorld world(HmRead());
  RegisterWriter(world);
  GcService gc(&world.cluster(), Seconds(5));
  gc.Start();
  // With a periodic daemon alive, the scheduler never drains: drive by deadline instead.
  for (int i = 0; i < 3; ++i) world.CallAsync("write_k", "v");
  world.scheduler().RunUntil(Seconds(16));
  gc.Stop();
  EXPECT_EQ(gc.stats().scans, 3);
  EXPECT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("k")), 1u);
}

}  // namespace
}  // namespace halfmoon
