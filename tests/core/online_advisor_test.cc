// Online advisor (DESIGN.md §11) end-to-end behaviour:
//   * drifting workloads: per-object switches fired by the advisor make the advisor-enabled
//     run log strictly fewer simulated bytes than BOTH static protocol choices;
//   * hysteresis: an oscillating object switches at most once per dwell window;
//   * the token bucket bounds the cluster-wide switch rate;
//   * HM_ADVISOR=0 bit-identity: with advisor mode off, the runtime reproduces the
//     pre-advisor golden execution exactly (events, end time, seqnums, content checksum);
//   * abandoned transitions (daemon died between BEGIN and END) are completed by a later
//     advisor sweep;
//   * the hot-path sketch's memory never grows with the live keyspace.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/online_advisor.h"
#include "src/core/ssf_runtime.h"
#include "src/core/switch_manager.h"
#include "src/faultcheck/workload.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon {
namespace {

using core::OnlineAdvisor;
using core::OnlineAdvisorConfig;
using core::ProtocolKind;

std::string Key(int i) { return "obj" + std::to_string(i); }

// Minimal advisor-aware harness (TestWorld predates per-runtime advisor control).
struct World {
  explicit World(bool advisor, ProtocolKind protocol, uint64_t seed = 1) {
    runtime::ClusterConfig ccfg;
    ccfg.seed = seed;
    cluster = std::make_unique<runtime::Cluster>(ccfg);
    core::RuntimeConfig rcfg;
    rcfg.default_protocol = protocol;
    rcfg.advisor = advisor;
    runtime = std::make_unique<core::SsfRuntime>(cluster.get(), rcfg);
    switcher = std::make_unique<core::SwitchManager>(cluster.get(), rcfg.switch_scope);

    // "mix" input: "<key>|<reads>|<writes>" — that many context reads then writes on one key.
    runtime->RegisterFunction("mix", [](core::SsfContext& ctx) -> sim::Task<Value> {
      const std::string& input = ctx.input();
      const size_t p1 = input.find('|');
      const size_t p2 = input.find('|', p1 + 1);
      const std::string key = input.substr(0, p1);
      const int reads = std::stoi(input.substr(p1 + 1, p2 - p1 - 1));
      const int writes = std::stoi(input.substr(p2 + 1));
      Value last;
      for (int i = 0; i < reads; ++i) last = co_await ctx.Read(key);
      for (int i = 0; i < writes; ++i) {
        co_await ctx.Write(key, key + "=" + std::to_string(i));
      }
      co_return last;
    });
  }

  Value Call(const std::string& function, Value input) {
    Value out;
    bool done = false;
    cluster->scheduler().Spawn(Drive(function, std::move(input), &out, &done));
    cluster->scheduler().Run();
    EXPECT_TRUE(done) << "invocation did not complete";
    return out;
  }

  sim::Task<void> Drive(std::string function, Value input, Value* out, bool* done) {
    *out = co_await runtime->InvokeSsf(std::move(function), std::move(input));
    *done = true;
  }

  std::unique_ptr<runtime::Cluster> cluster;
  std::unique_ptr<core::SsfRuntime> runtime;
  std::unique_ptr<core::SwitchManager> switcher;
};

// Tight deterministic advisor settings for tests: everything decided in one RunOnce, epochs
// rotated manually (epoch set beyond any test's simulated horizon).
OnlineAdvisorConfig TestAdvisorConfig() {
  OnlineAdvisorConfig config;
  config.min_ops = 8;
  config.margin = 0.05;
  config.dwell = 0;
  config.epoch = Seconds(1000000);
  config.switch_rate = 1e9;
  config.switch_burst = 1e9;
  return config;
}

// The drifting workload of the advisor gate, per object: a read-heavy phase (40r/2w), a
// drift phase during which the advisor reacts (2r/10w), and a write-heavy tail (2r/20w).
constexpr int kDriftObjects = 16;

void RunPhase(World& world, int reads, int writes) {
  for (int i = 0; i < kDriftObjects; ++i) {
    world.Call("mix", Key(i) + "|" + std::to_string(reads) + "|" + std::to_string(writes));
  }
}

int64_t RunDrift(bool advisor_on, ProtocolKind protocol, int64_t* switches_out = nullptr) {
  World world(advisor_on, protocol);
  for (int i = 0; i < kDriftObjects; ++i) world.runtime->PopulateObject(Key(i), "seed");
  std::unique_ptr<OnlineAdvisor> advisor;
  if (advisor_on) {
    advisor = std::make_unique<OnlineAdvisor>(world.runtime.get(), world.switcher.get(),
                                              TestAdvisorConfig());
  }

  RunPhase(world, /*reads=*/40, /*writes=*/2);
  if (advisor) {
    // Read-heavy mix on the read-optimal default: the advisor must leave everything alone.
    advisor->RunOnce();
    world.cluster->scheduler().Run();
    EXPECT_EQ(advisor->stats().switches_fired, 0);
    EXPECT_GT(advisor->stats().objects_evaluated, 0);
    // Age out the read-heavy history so the estimates track the drifted mix.
    world.runtime->sketch().AdvanceEpoch();
    world.runtime->sketch().AdvanceEpoch();
  }

  RunPhase(world, /*reads=*/2, /*writes=*/10);
  if (advisor) {
    advisor->RunOnce();
    world.cluster->scheduler().Run();  // Drain the fired SwitchObject coroutines.
    EXPECT_EQ(advisor->stats().switches_fired, kDriftObjects);
    EXPECT_EQ(world.switcher->object_switches_completed(), kDriftObjects);
  }

  RunPhase(world, /*reads=*/2, /*writes=*/20);
  if (switches_out != nullptr) {
    *switches_out = world.switcher->object_switches_completed();
  }
  return world.cluster->TotalLoggedBytes();
}

TEST(OnlineAdvisorTest, DriftingWorkloadBeatsBothStaticProtocols) {
  int64_t switches = 0;
  const int64_t advisor_bytes = RunDrift(/*advisor_on=*/true, ProtocolKind::kHalfmoonRead,
                                         &switches);
  const int64_t static_read = RunDrift(/*advisor_on=*/false, ProtocolKind::kHalfmoonRead);
  const int64_t static_write = RunDrift(/*advisor_on=*/false, ProtocolKind::kHalfmoonWrite);

  std::printf("[advisor] drift bytes: advisor=%lld static_hmread=%lld static_hmwrite=%lld "
              "switches=%lld objects=%d %s\n",
              static_cast<long long>(advisor_bytes), static_cast<long long>(static_read),
              static_cast<long long>(static_write), static_cast<long long>(switches),
              kDriftObjects,
              advisor_bytes < static_read && advisor_bytes < static_write ? "win" : "LOSS");

  // The acceptance gate: strictly fewer logged bytes than either static choice, with a
  // bounded number of transitions (one per object for this single drift).
  EXPECT_LT(advisor_bytes, static_read);
  EXPECT_LT(advisor_bytes, static_write);
  EXPECT_EQ(switches, kDriftObjects);
}

TEST(OnlineAdvisorTest, OscillatingObjectSwitchesAtMostOncePerDwellWindow) {
  World world(/*advisor=*/true, ProtocolKind::kHalfmoonRead);
  world.runtime->PopulateObject("osc", "seed");
  const sharedlog::TagId id =
      world.cluster->log_space().tags().InternPrefixed(sharedlog::kWriteLogPrefix, "osc");

  OnlineAdvisorConfig config = TestAdvisorConfig();
  config.dwell = Seconds(1000);  // Far beyond this test's simulated horizon.
  OnlineAdvisor advisor(world.runtime.get(), world.switcher.get(), config);

  // Write-heavy: the object flips from the HM-read default to HM-write.
  for (int i = 0; i < 20; ++i) world.runtime->RecordAccess(id, /*is_read=*/false);
  advisor.RunOnce();
  world.cluster->scheduler().Run();
  EXPECT_EQ(advisor.stats().switches_fired, 1);
  EXPECT_EQ(world.switcher->object_switches_completed(), 1);

  // Oscillate the observed mix each "period"; within the dwell window nothing may fire.
  for (int cycle = 0; cycle < 3; ++cycle) {
    world.runtime->sketch().AdvanceEpoch();
    world.runtime->sketch().AdvanceEpoch();
    const bool read_heavy = (cycle % 2) == 0;
    for (int i = 0; i < 20; ++i) world.runtime->RecordAccess(id, read_heavy);
    advisor.RunOnce();
    world.cluster->scheduler().Run();
  }
  EXPECT_EQ(advisor.stats().switches_fired, 1);
  EXPECT_GE(advisor.stats().suppressed_dwell, 1);
  EXPECT_EQ(world.switcher->object_switches_completed(), 1);
  std::printf("[advisor] hysteresis: fired=%lld dwell_suppressed=%lld\n",
              static_cast<long long>(advisor.stats().switches_fired),
              static_cast<long long>(advisor.stats().suppressed_dwell));
}

TEST(OnlineAdvisorTest, TokenBucketBoundsSwitchRate) {
  World world(/*advisor=*/true, ProtocolKind::kHalfmoonRead);
  for (int i = 0; i < kDriftObjects; ++i) world.runtime->PopulateObject(Key(i), "seed");
  OnlineAdvisorConfig config = TestAdvisorConfig();
  config.switch_rate = 1e-9;  // No refill within the test.
  config.switch_burst = 3.0;
  OnlineAdvisor advisor(world.runtime.get(), world.switcher.get(), config);

  for (int i = 0; i < kDriftObjects; ++i) {
    const sharedlog::TagId id =
        world.cluster->log_space().tags().InternPrefixed(sharedlog::kWriteLogPrefix, Key(i));
    for (int j = 0; j < 20; ++j) world.runtime->RecordAccess(id, /*is_read=*/false);
  }
  advisor.RunOnce();
  world.cluster->scheduler().Run();
  EXPECT_EQ(advisor.stats().switches_fired, 3);
  EXPECT_EQ(advisor.stats().suppressed_tokens, kDriftObjects - 3);
}

TEST(OnlineAdvisorTest, AbandonedMidSwitchTransitionIsCompletedLater) {
  World world(/*advisor=*/true, ProtocolKind::kHalfmoonRead);
  world.runtime->PopulateObject("a", "seed");
  const sharedlog::TagId id =
      world.cluster->log_space().tags().InternPrefixed(sharedlog::kWriteLogPrefix, "a");
  OnlineAdvisor advisor(world.runtime.get(), world.switcher.get(), TestAdvisorConfig());

  // The advisor daemon "dies" between BEGIN and END: the object is left transitional.
  world.cluster->failure_injector().CrashAtSite("advisor.mid_switch", 0);
  for (int i = 0; i < 20; ++i) world.runtime->RecordAccess(id, /*is_read=*/false);
  advisor.RunOnce();
  world.cluster->scheduler().Run();
  EXPECT_EQ(advisor.stats().switches_fired, 1);
  EXPECT_EQ(world.switcher->object_switches_completed(), 0);

  // Mid-transition the object still serves (transitional protocol), and the next sweep
  // completes the abandoned switch.
  world.cluster->failure_injector().ClearCrashSchedule();
  EXPECT_EQ(world.Call("mix", "a|1|1"), "seed");
  advisor.RunOnce();
  world.cluster->scheduler().Run();
  EXPECT_EQ(world.switcher->object_switches_completed(), 1);
  EXPECT_EQ(world.Call("mix", "a|1|0"), "a=0");
}

TEST(OnlineAdvisorTest, SketchMemoryIndependentOfLiveObjects) {
  World world(/*advisor=*/true, ProtocolKind::kHalfmoonRead);
  const size_t before = world.runtime->sketch().MemoryBytes();
  for (int i = 0; i < 5000; ++i) {
    const sharedlog::TagId id = world.cluster->log_space().tags().InternPrefixed(
        sharedlog::kWriteLogPrefix, "wide" + std::to_string(i));
    world.runtime->RecordAccess(id, (i % 3) != 0);
  }
  EXPECT_EQ(world.runtime->sketch().MemoryBytes(), before);
  std::printf("[advisor] sketch bytes=%zu across 5000 live objects (constant)\n", before);
}

// ---------------------------------------------------------------------------
// HM_ADVISOR=0 bit-identity
// ---------------------------------------------------------------------------

uint64_t HashBytes(uint64_t h, std::string_view s) {
  for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
  return h;
}

uint64_t HashInt(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
  return h;
}

struct PinnedRun {
  uint64_t events = 0;
  uint64_t end_now = 0;
  uint64_t next_seqnum = 0;
  uint64_t content_fnv = 0;
};

PinnedRun RunCounterWithAdvisorFlag(bool advisor) {
  runtime::ClusterConfig ccfg;  // Defaults: seed 1 — matches the PR 4 golden capture.
  // The golden tuple witnesses the serial append engine on the volatile store; pin both
  // explicitly so the HM_PIPELINE=4 / HM_DURABLE=1 CI legs (which change the environment
  // defaults) don't shift the timing.
  ccfg.append_batch_pipeline = 1;
  ccfg.durable = false;
  runtime::Cluster cluster(ccfg);
  core::RuntimeConfig rcfg;
  rcfg.default_protocol = ProtocolKind::kHalfmoonRead;
  rcfg.advisor = advisor;
  core::SsfRuntime runtime(&cluster, rcfg);
  faultcheck::Workload workload = faultcheck::CounterWorkload();
  workload.Install(runtime);

  for (const auto& [function, input] : workload.invocations) {
    Value out;
    bool done = false;
    auto drive = [](core::SsfRuntime* rt, std::string fn, Value in, Value* o,
                    bool* d) -> sim::Task<void> {
      *o = co_await rt->InvokeSsf(std::move(fn), std::move(in));
      *d = true;
    };
    cluster.scheduler().Spawn(drive(&runtime, function, input, &out, &done));
    cluster.scheduler().Run();
    EXPECT_TRUE(done);
  }

  PinnedRun r;
  r.events = static_cast<uint64_t>(cluster.scheduler().events_processed());
  r.end_now = static_cast<uint64_t>(cluster.scheduler().Now());
  r.next_seqnum = static_cast<uint64_t>(cluster.log_space().next_seqnum());
  uint64_t h = 14695981039346656037ull;
  auto& log = cluster.log_space();
  for (const std::string& name : log.StreamTagsWithPrefix("")) {
    h = HashBytes(h, name);
    for (const auto& rec : log.ReadStream(name)) {
      h = HashInt(h, rec->tags.size());
      for (const auto& [key, field] : rec->fields) {
        h = HashBytes(h, key);
        if (const int64_t* i = std::get_if<int64_t>(&field)) {
          h = HashInt(h, static_cast<uint64_t>(*i));
        } else {
          h = HashBytes(h, std::get<std::string>(field));
        }
      }
    }
  }
  r.content_fnv = h;
  return r;
}

TEST(OnlineAdvisorTest, AdvisorOffIsBitIdenticalToStaticRuntime) {
  // The same golden tuple sharded_equivalence_test pins for Halfmoon-read/counter (captured
  // at the PR 4 head): with advisor mode off the runtime must still reproduce it exactly —
  // no extra events, no sketch, no resolution reads, identical committed content.
  PinnedRun r = RunCounterWithAdvisorFlag(/*advisor=*/false);
  EXPECT_EQ(r.events, 88ull);
  EXPECT_EQ(r.end_now, 23700364ull);
  EXPECT_EQ(r.next_seqnum, 11ull);
  EXPECT_EQ(r.content_fnv, 0xa75e9b1f8b1c59c9ull);
  std::printf("[advisor] HM_ADVISOR=0 content checksum 0x%llx (pinned)\n",
              static_cast<unsigned long long>(r.content_fnv));

  // Advisor mode with no advisor service running appends the same records — resolution is a
  // pure read. (Byte content is NOT compared: the resolution reads draw latency samples from
  // the shared rng, which shifts the random instance IDs embedded in record fields.)
  PinnedRun with_advisor = RunCounterWithAdvisorFlag(/*advisor=*/true);
  EXPECT_EQ(with_advisor.next_seqnum, r.next_seqnum);
}

}  // namespace
}  // namespace halfmoon
