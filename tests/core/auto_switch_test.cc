// Auto-switching: the §4.6 criterion wired to the §4.7 mechanism.

#include <gtest/gtest.h>

#include "src/core/auto_switch.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::AutoSwitchConfig;
using core::AutoSwitchService;
using core::ProtocolKind;
using core::SwitchManager;
using testing::TestWorld;
using testing::TestWorldOptions;

struct Fixture {
  explicit Fixture(ProtocolKind initial)
      : world(MakeOptions(initial)),
        manager(&world.cluster(), world.runtime().config().switch_scope),
        service(&world.cluster(), &manager, initial) {
    world.runtime().PopulateObject("k", "v");
    world.Register("reads", [](core::SsfContext& ctx) -> sim::Task<Value> {
      for (int i = 0; i < 10; ++i) co_await ctx.Read("k");
      co_return "";
    });
    world.Register("writes", [](core::SsfContext& ctx) -> sim::Task<Value> {
      for (int i = 0; i < 10; ++i) co_await ctx.Write("k", "v");
      co_return "";
    });
  }

  static TestWorldOptions MakeOptions(ProtocolKind initial) {
    TestWorldOptions options;
    options.protocol = initial;
    options.enable_switching = true;
    return options;
  }

  bool Evaluate() {
    bool switched = false;
    bool done = false;
    world.scheduler().Spawn([](AutoSwitchService* s, bool* out, bool* done)
                                -> sim::Task<void> {
      *out = co_await s->EvaluateOnce();
      *done = true;
    }(&service, &switched, &done));
    world.scheduler().Run();
    HM_CHECK(done);
    return switched;
  }

  TestWorld world;
  SwitchManager manager;
  AutoSwitchService service;
};

TEST(AutoSwitchTest, ReadHeavyTrafficSwitchesToHalfmoonRead) {
  Fixture fx(ProtocolKind::kHalfmoonWrite);
  for (int i = 0; i < 10; ++i) fx.world.Call("reads");
  EXPECT_TRUE(fx.Evaluate());
  EXPECT_EQ(fx.service.current_protocol(), ProtocolKind::kHalfmoonRead);
  EXPECT_EQ(fx.manager.history().size(), 1u);
}

TEST(AutoSwitchTest, WriteHeavyTrafficSwitchesToHalfmoonWrite) {
  Fixture fx(ProtocolKind::kHalfmoonRead);
  for (int i = 0; i < 10; ++i) fx.world.Call("writes");
  EXPECT_TRUE(fx.Evaluate());
  EXPECT_EQ(fx.service.current_protocol(), ProtocolKind::kHalfmoonWrite);
}

TEST(AutoSwitchTest, MatchingProtocolStaysPut) {
  Fixture fx(ProtocolKind::kHalfmoonRead);
  for (int i = 0; i < 10; ++i) fx.world.Call("reads");
  EXPECT_FALSE(fx.Evaluate());
  EXPECT_TRUE(fx.manager.history().empty());
}

TEST(AutoSwitchTest, TooFewOpsIsInconclusive) {
  Fixture fx(ProtocolKind::kHalfmoonRead);
  fx.world.Call("writes");  // 10 ops < min_ops (50).
  EXPECT_FALSE(fx.Evaluate());
}

TEST(AutoSwitchTest, BorderlineMixWithinMarginDoesNotFlap) {
  // Near the 2/3 boundary (reads:writes = 2:1) the margin must suppress switching both ways.
  Fixture fx(ProtocolKind::kHalfmoonWrite);
  fx.world.Register("mixed", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 10; ++i) {
      co_await ctx.Read("k");
      co_await ctx.Read("k");
      co_await ctx.Write("k", "v");
    }
    co_return "";
  });
  for (int i = 0; i < 4; ++i) fx.world.Call("mixed");
  EXPECT_FALSE(fx.Evaluate());
  EXPECT_NEAR(fx.service.stats().last_read_ratio, 2.0 / 3.0, 0.02);
}

TEST(AutoSwitchTest, StateSurvivesAutoSwitchRoundTrip) {
  Fixture fx(ProtocolKind::kHalfmoonWrite);
  fx.world.runtime().PopulateObject("counter", EncodeInt64(0));
  fx.world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    co_await ctx.Write("counter", EncodeInt64(DecodeInt64(v) + 1));
    co_return "";
  });
  fx.world.Register("read_counter", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("counter");
  });

  fx.world.Call("incr");
  for (int i = 0; i < 10; ++i) fx.world.Call("reads");
  ASSERT_TRUE(fx.Evaluate());  // -> Halfmoon-read.
  fx.world.Call("incr");
  for (int i = 0; i < 10; ++i) fx.world.Call("writes");
  ASSERT_TRUE(fx.Evaluate());  // -> Halfmoon-write.
  fx.world.Call("incr");
  EXPECT_EQ(DecodeInt64(fx.world.Call("read_counter")), 3);
  EXPECT_EQ(fx.service.stats().switches_triggered, 2);
}

TEST(AutoSwitchTest, PeriodicLoopEvaluatesOnSchedule) {
  Fixture fx(ProtocolKind::kHalfmoonWrite);
  fx.service.Start();
  for (int i = 0; i < 10; ++i) fx.world.CallAsync("reads");
  fx.world.scheduler().RunUntil(Seconds(7));  // Window = 2s: ~3 evaluations.
  fx.service.Stop();
  EXPECT_GE(fx.service.stats().windows_evaluated, 3);
  EXPECT_EQ(fx.service.current_protocol(), ProtocolKind::kHalfmoonRead);
}

}  // namespace
}  // namespace halfmoon
