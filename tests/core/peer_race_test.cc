// The second race condition of §4: duplicate (peer) instances of one invocation racing each
// other, resolved by logCondAppend (§5.1). Both instances must converge on identical state and
// the external effects must remain exactly-once.

#include <string>

#include <gtest/gtest.h>

#include "src/core/env.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

class PeerRaceTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(FaultTolerantProtocols, PeerRaceTest,
                         ::testing::Values(ProtocolKind::kBoki, ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

void RegisterCounter(TestWorld& world) {
  world.runtime().PopulateObject("counter", EncodeInt64(0));
  world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    int64_t n = DecodeInt64(v);
    co_await ctx.Compute();
    co_await ctx.Write("counter", EncodeInt64(n + 1));
    co_return EncodeInt64(n + 1);
  });
  world.Register("read_counter", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("counter");
  });
}

TEST_P(PeerRaceTest, DuplicateInstanceEveryInvocation) {
  TestWorldOptions options;
  options.protocol = GetParam();
  TestWorld world(options);
  RegisterCounter(world);
  world.cluster().failure_injector().SetDuplicateProbability(1.0);
  for (int i = 0; i < 4; ++i) world.Call("incr");
  world.cluster().failure_injector().SetDuplicateProbability(0.0);
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 4);
  EXPECT_GE(world.runtime().stats().peer_instances, 4);
}

TEST_P(PeerRaceTest, PeersPlusCrashStorms) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TestWorldOptions options;
    options.protocol = GetParam();
    options.seed = seed;
    TestWorld world(options);
    RegisterCounter(world);
    world.cluster().failure_injector().SetDuplicateProbability(0.7);
    world.cluster().failure_injector().SetCrashProbability(0.05);
    for (int i = 0; i < 4; ++i) world.Call("incr");
    world.cluster().failure_injector().SetDuplicateProbability(0.0);
    world.cluster().failure_injector().SetCrashProbability(0.0);
    EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 4) << "seed " << seed;
  }
}

TEST_P(PeerRaceTest, PeersAgreeOnInvokeResults) {
  // The invoke-pre record pins the callee instance ID: even when peers race, only one callee
  // instance (ID) may exist, and all peers must return the same workflow result.
  TestWorldOptions options;
  options.protocol = GetParam();
  TestWorld world(options);
  world.runtime().PopulateObject("acc", EncodeInt64(0));
  world.Register("add", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("acc");
    int64_t n = DecodeInt64(v) + 1;
    co_await ctx.Write("acc", EncodeInt64(n));
    co_return EncodeInt64(n);
  });
  world.Register("parent", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value a = co_await ctx.Invoke("add", "");
    Value b = co_await ctx.Invoke("add", "");
    co_return a + "," + b;
  });
  world.Register("read_acc", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("acc");
  });
  world.cluster().failure_injector().SetDuplicateProbability(0.9);
  Value result = world.Call("parent");
  world.cluster().failure_injector().SetDuplicateProbability(0.0);
  EXPECT_EQ(result, "1,2");
  EXPECT_EQ(DecodeInt64(world.Call("read_acc")), 2);
}

TEST(CondAppendConflictTest, StatsRecordLostRaces) {
  TestWorldOptions options;
  options.protocol = ProtocolKind::kHalfmoonWrite;
  TestWorld world(options);
  RegisterCounter(world);
  world.cluster().failure_injector().SetDuplicateProbability(1.0);
  for (int i = 0; i < 8; ++i) world.Call("incr");
  int64_t conflicts = 0;
  for (int n = 0; n < world.cluster().node_count(); ++n) {
    conflicts += world.cluster().node(n).log().stats().cond_append_conflicts;
  }
  // With a peer per invocation racing through the same step log, at least one conditional
  // append must have lost.
  EXPECT_GT(conflicts, 0);
}

}  // namespace
}  // namespace halfmoon
