// Re-enactments of the paper's consistency examples: Figure 4 (Halfmoon-read's effective
// order follows logical timestamps), Figure 6 / Figure 8 (Halfmoon-write's reordering of
// log-free writes via conditional updates), and the §4.4 real-time boundary and sync-record
// properties. These tests drive the protocol functions directly over hand-built Envs so the
// interleaving is exactly the one in the paper's figures.

#include <gtest/gtest.h>

#include "src/core/log_steps.h"
#include "src/core/protocols.h"
#include "src/runtime/cluster.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

namespace protocols = core::protocols;
using core::Env;
using core::InitSsf;

Env MakeEnv(runtime::Cluster& cluster, const std::string& id, int node) {
  Env env;
  env.instance_id = id;
  env.cluster = &cluster;
  env.node = &cluster.node(node);
  return env;
}

void Seed(runtime::Cluster& cluster, const std::string& key, const Value& value) {
  SimTime now = cluster.scheduler().Now();
  cluster.kv_state().Put(now, key, value);
  std::string version = "seed:" + key;
  cluster.kv_state().PutVersioned(now, testing::ObjectIdFor(cluster, key), version, value);
  FieldMap fields;
  fields.SetStr("op", "write");
  fields.SetInt("step", 0);
  fields.SetStr("key", key);
  fields.SetStr("version", version);
  cluster.log_space().Append(now, sharedlog::OneTag(sharedlog::WriteLogTag(key)),
                             std::move(fields));
}

// Runs a scripted scenario to completion.
void RunScript(runtime::Cluster& cluster, sim::Task<void> script) {
  cluster.scheduler().Spawn(std::move(script));
  cluster.scheduler().Run();
}

TEST(Figure4Test, HalfmoonReadOrdersEventsByLogicalTimestamps) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");
  Seed(cluster, "Y", "y0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f1, "");  // F1 acquires t0.
    co_await InitSsf(f2, "");

    // F2 writes X *after* F1's init (commit seqnum t1 > t0).
    co_await protocols::HalfmoonReadWrite(f2, "X", "x2");

    // F1's log-free read of X seeks backward from t0: it must NOT see F2's write at t1.
    Value x = co_await protocols::HalfmoonReadRead(f1, "X", false);
    EXPECT_EQ(x, "x0");

    // F1 writes X, advancing its cursor to the commit timestamp t3.
    co_await protocols::HalfmoonReadWrite(f1, "X", "x1");

    // F2 writes Y at t2 < t3 (it committed before F1's write? No — commit just happened
    // after; make F2's write commit first by ordering the calls).
    co_await protocols::HalfmoonReadWrite(f2, "Y", "y2");

    // Hmm: F2's Write(Y) committed after F1's Write(X), so F1's cursor t3 < t_{W(Y)}. To
    // reproduce Figure 4 exactly, F1 must read Y *after* advancing past F2's write. Re-read
    // after another F1 write to bump the cursor.
    co_await protocols::HalfmoonReadWrite(f1, "X", "x1b");
    Value y = co_await protocols::HalfmoonReadRead(f1, "Y", false);
    EXPECT_EQ(y, "y2");  // Now visible: cursorTS exceeds the Y-write's seqnum.
  }(&cluster));
}

TEST(Figure4Test, LogFreeReadIsStableAcrossLaterWrites) {
  // The crux of idempotent log-free reads: re-evaluating the same read (same cursorTS) after
  // more writes landed must return the same result.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f1, "");
    co_await InitSsf(f2, "");

    Value first = co_await protocols::HalfmoonReadRead(f1, "X", false);
    // F2 and F3-like writers churn the object.
    co_await protocols::HalfmoonReadWrite(f2, "X", "x2");
    co_await protocols::HalfmoonReadWrite(f2, "X", "x3");
    // Re-executing F1's read (crash-replay scenario: same cursorTS) must see the old value.
    Value replay = co_await protocols::HalfmoonReadRead(f1, "X", false);
    EXPECT_EQ(first, "x0");
    EXPECT_EQ(replay, "x0");
  }(&cluster));
}

TEST(Figure6Test, HalfmoonWriteReordersStaleWritesBehindFresherOnes) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");
  Seed(cluster, "Y", "y0");
  Seed(cluster, "Z", "z0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f1, "");  // F1 acquires t0.
    co_await InitSsf(f2, "");  // F2 acquires t1 > t0.

    // F2 reads Y, advancing its cursor further (it has seen "fresher" data).
    co_await protocols::HalfmoonWriteRead(f2, "Y", false);
    // F2's Write(X) applies with version (t_f2, 1).
    co_await protocols::HalfmoonWriteWrite(f2, "X", "x-f2");

    // F1's Write(X) carries the older version (t0, 1): the conditional update is rejected and
    // the write is effectively ordered *before* F2's — it does not overwrite.
    co_await protocols::HalfmoonWriteWrite(f1, "X", "x-f1");
    EXPECT_EQ(c->kv_state().Get("X").value_or(""), "x-f2");

    // F1 now reads Y (advancing cursorTS past everything above), then writes Z: this write is
    // fresher than F2's earlier Z write and takes effect in real-time order.
    co_await protocols::HalfmoonWriteWrite(f2, "Z", "z-f2");
    co_await protocols::HalfmoonWriteRead(f1, "Y", false);
    co_await protocols::HalfmoonWriteWrite(f1, "Z", "z-f1");
    EXPECT_EQ(c->kv_state().Get("Z").value_or(""), "z-f1");
  }(&cluster));
}

TEST(Figure8Test, ConsecutiveLogFreeWritesToDifferentObjectsMayCommute) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");
  Seed(cluster, "Y", "y0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f1, "");  // t0.
    co_await InitSsf(f2, "");  // t1 > t0.

    co_await protocols::HalfmoonWriteWrite(f2, "X", "x-f2");  // Version (t1, 1): applied.
    co_await protocols::HalfmoonWriteRead(f2, "Y", false);    // F2 reads Y ("y0").

    // F1's consecutive writes: W(X) with (t0,1) loses to F2's (t1,1); W(Y) with (t0,2) beats
    // the seed version and applies. F1's program order W(X) -> W(Y) is permuted relative to
    // F2's R(Y) — exactly the commutation Figure 8 allows.
    co_await protocols::HalfmoonWriteWrite(f1, "X", "x-f1");
    co_await protocols::HalfmoonWriteWrite(f1, "Y", "y-f1");
    EXPECT_EQ(c->kv_state().Get("X").value_or(""), "x-f2");
    EXPECT_EQ(c->kv_state().Get("Y").value_or(""), "y-f1");
  }(&cluster));
}

TEST(Section44Test, InitEnforcesRealTimeBoundaryAcrossSsfs) {
  // §4.4: if an operation finishes at real time t, every SSF starting after t sees it.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env writer = MakeEnv(*c, "W", 0);
    co_await InitSsf(writer, "");
    co_await protocols::HalfmoonReadWrite(writer, "X", "x1");

    // A new SSF initialized after the write finished must observe it (log-free read!).
    Env reader = MakeEnv(*c, "R", 1);
    co_await InitSsf(reader, "");
    Value x = co_await protocols::HalfmoonReadRead(reader, "X", false);
    EXPECT_EQ(x, "x1");
  }(&cluster));
}

TEST(Section44Test, SyncUpgradesHalfmoonReadToLinearizableRead) {
  // Without a sync, an old SSF's cursor hides concurrent writes; after appending a sync
  // record the read observes the present.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  Seed(cluster, "X", "x0");

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f1, "");
    co_await InitSsf(f2, "");
    co_await protocols::HalfmoonReadWrite(f2, "X", "x2");

    Value stale = co_await protocols::HalfmoonReadRead(f1, "X", false);
    EXPECT_EQ(stale, "x0");

    // Manually append a sync record (what SsfContext::Sync does).
    f1.step += 1;
    FieldMap fields;
    fields.SetStr("op", "sync");
    fields.SetInt("step", f1.step);
    co_await core::LogStep(f1, sharedlog::NoTags(), std::move(fields));

    Value fresh = co_await protocols::HalfmoonReadRead(f1, "X", false);
    EXPECT_EQ(fresh, "x2");
  }(&cluster));
}

TEST(Section42Test, ConsecutiveWriteCounterBreaksTiesWithinOneSsf) {
  // Two consecutive log-free writes to the *same* object by one SSF share a cursorTS; the
  // counter makes the second win (program order preserved for same-object writes).
  runtime::Cluster cluster(runtime::ClusterConfig{});

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    co_await InitSsf(f1, "");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "first");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "second");
    EXPECT_EQ(c->kv_state().Get("K").value_or(""), "second");
  }(&cluster));
}

TEST(Section42Test, RetriedWriteCannotOverwriteFresherData) {
  // A Halfmoon-write retry re-issues its conditional update with the same version tuple; data
  // written meanwhile by fresher SSFs must survive.
  runtime::Cluster cluster(runtime::ClusterConfig{});

  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0);
    co_await InitSsf(f1, "");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "v1");

    Env f2 = MakeEnv(*c, "F2", 1);
    co_await InitSsf(f2, "");
    co_await protocols::HalfmoonWriteWrite(f2, "K", "v2");

    // F1 crashes and re-executes its write (same Env state as the original attempt).
    Env f1_retry = MakeEnv(*c, "F1", 2);
    co_await InitSsf(f1_retry, "");  // Recovers t0 from the init record.
    EXPECT_EQ(f1_retry.init_cursor_ts, f1.init_cursor_ts);
    co_await protocols::HalfmoonWriteWrite(f1_retry, "K", "v1");
    EXPECT_EQ(c->kv_state().Get("K").value_or(""), "v2");
  }(&cluster));
}

}  // namespace
}  // namespace halfmoon
