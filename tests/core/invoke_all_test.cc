// Scatter-gather invocation (SsfContext::InvokeAll): concurrency, exactly-once under crash
// sweeps, and peer races over the batched pre/post records.

#include <gtest/gtest.h>

#include "src/core/env.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

class InvokeAllTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, InvokeAllTest,
                         ::testing::Values(ProtocolKind::kUnsafe, ProtocolKind::kBoki,
                                           ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TestWorldOptions Opts(ProtocolKind kind) {
  TestWorldOptions options;
  options.protocol = kind;
  return options;
}

void RegisterFanout(TestWorld& world, int fanout) {
  world.Register("leaf", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("leaf:" + ctx.input(), ctx.input());
    co_return ctx.input() + "!";
  });
  world.Register("fan", [fanout](core::SsfContext& ctx) -> sim::Task<Value> {
    std::vector<std::pair<std::string, Value>> calls;
    for (int i = 0; i < fanout; ++i) {
      calls.emplace_back("leaf", "c" + std::to_string(i));
    }
    std::vector<Value> results = co_await ctx.InvokeAll(std::move(calls));
    Value joined;
    for (const Value& r : results) {
      if (!joined.empty()) joined.push_back(',');
      joined += r;
    }
    co_return joined;
  });
}

TEST_P(InvokeAllTest, ResultsArriveInCallOrder) {
  TestWorld world(Opts(GetParam()));
  RegisterFanout(world, 4);
  EXPECT_EQ(world.Call("fan"), "c0!,c1!,c2!,c3!");
}

TEST_P(InvokeAllTest, ChildrenActuallyRunConcurrently) {
  // 5 parallel children must finish in roughly one child's time, not five.
  TestWorld world(Opts(GetParam()));
  RegisterFanout(world, 5);
  SimTime start = world.scheduler().Now();
  world.Call("fan");
  double elapsed_ms = ToMillisDouble(world.scheduler().Now() - start);

  TestWorld serial_world(Opts(GetParam()));
  serial_world.Register("leaf", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("leaf:" + ctx.input(), ctx.input());
    co_return ctx.input() + "!";
  });
  serial_world.Register("serial_fan", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 5; ++i) {
      co_await ctx.Invoke("leaf", "c" + std::to_string(i));
    }
    co_return "";
  });
  SimTime serial_start = serial_world.scheduler().Now();
  serial_world.Call("serial_fan");
  double serial_ms = ToMillisDouble(serial_world.scheduler().Now() - serial_start);

  EXPECT_LT(elapsed_ms * 2, serial_ms) << "parallel fan-out not faster than serial chain";
}

TEST_P(InvokeAllTest, SingleCallGroupBehavesLikeInvoke) {
  TestWorld world(Opts(GetParam()));
  RegisterFanout(world, 1);
  EXPECT_EQ(world.Call("fan"), "c0!");
}

class InvokeAllFaultTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(FaultTolerant, InvokeAllFaultTest,
                         ::testing::Values(ProtocolKind::kBoki, ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

void RegisterParallelAdders(TestWorld& world) {
  world.runtime().PopulateObject("acc:0", EncodeInt64(0));
  world.runtime().PopulateObject("acc:1", EncodeInt64(0));
  world.runtime().PopulateObject("acc:2", EncodeInt64(0));
  world.Register("add_to", [](core::SsfContext& ctx) -> sim::Task<Value> {
    std::string key = "acc:" + ctx.input();
    Value v = co_await ctx.Read(key);
    co_await ctx.Write(key, EncodeInt64(DecodeInt64(v) + 1));
    co_return "";
  });
  world.Register("fanout_add", [](core::SsfContext& ctx) -> sim::Task<Value> {
    std::vector<std::pair<std::string, Value>> calls;
    calls.emplace_back("add_to", "0");
    calls.emplace_back("add_to", "1");
    calls.emplace_back("add_to", "2");
    co_await ctx.InvokeAll(std::move(calls));
    co_return "";
  });
  world.Register("read_all", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value a = co_await ctx.Read("acc:0");
    Value b = co_await ctx.Read("acc:1");
    Value c = co_await ctx.Read("acc:2");
    co_return a + "," + b + "," + c;
  });
}

TEST_P(InvokeAllFaultTest, ExactlyOnceUnderCrashSweep) {
  auto run = [&](int64_t crash_site) -> std::pair<int64_t, Value> {
    TestWorld world(Opts(GetParam()));
    RegisterParallelAdders(world);
    if (crash_site >= 0) {
      world.cluster().failure_injector().CrashAtSiteHits({crash_site});
    }
    world.Call("fanout_add");
    int64_t sites = world.cluster().failure_injector().site_hits();
    world.cluster().failure_injector().CrashAtSiteHits({});
    return {sites, world.Call("read_all")};
  };

  auto [sites, clean] = run(-1);
  ASSERT_EQ(clean, "1,1,1");
  ASSERT_GT(sites, 0);
  for (int64_t k = 0; k < sites; ++k) {
    auto [_, state] = run(k);
    EXPECT_EQ(state, "1,1,1") << "crash at site " << k;
  }
}

TEST_P(InvokeAllFaultTest, ExactlyOnceWithPeerRaces) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TestWorldOptions options;
    options.protocol = GetParam();
    options.seed = seed;
    TestWorld world(options);
    RegisterParallelAdders(world);
    world.cluster().failure_injector().SetDuplicateProbability(0.8);
    world.Call("fanout_add");
    world.cluster().failure_injector().SetDuplicateProbability(0.0);
    EXPECT_EQ(world.Call("read_all"), "1,1,1") << "seed " << seed;
  }
}

TEST_P(InvokeAllFaultTest, CrashStormsWithPeers) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TestWorldOptions options;
    options.protocol = GetParam();
    options.seed = seed;
    TestWorld world(options);
    RegisterParallelAdders(world);
    world.cluster().failure_injector().SetDuplicateProbability(0.4);
    world.cluster().failure_injector().SetCrashProbability(0.03);
    world.Call("fanout_add");
    world.Call("fanout_add");
    world.cluster().failure_injector().SetDuplicateProbability(0.0);
    world.cluster().failure_injector().SetCrashProbability(0.0);
    EXPECT_EQ(world.Call("read_all"), "2,2,2") << "seed " << seed;
  }
}

}  // namespace
}  // namespace halfmoon
