// The §4.4 ordered-writes extension of Halfmoon-write: a sync record between consecutive
// log-free writes to different objects prevents the Figure 8 commutation.

#include <gtest/gtest.h>

#include "src/core/log_steps.h"
#include "src/core/protocols.h"
#include "src/runtime/cluster.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

namespace protocols = core::protocols;
using core::Env;
using core::InitSsf;
using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

Env MakeEnv(runtime::Cluster& cluster, const std::string& id, int node, bool ordered) {
  Env env;
  env.instance_id = id;
  env.cluster = &cluster;
  env.node = &cluster.node(node);
  env.preserve_write_order = ordered;
  return env;
}

TEST(OrderedWritesTest, Figure8CommutationIsPrevented) {
  // Same interleaving as Figure 8, but with the extension on: F1's consecutive writes carry a
  // sync between them, so W(Y) is pinned after F2's R(Y) — and because W(X) lost its
  // conditional update, the dependent pair no longer commutes observably.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.scheduler().Spawn([](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0, /*ordered=*/true);
    Env f2 = MakeEnv(*c, "F2", 1, /*ordered=*/false);
    co_await InitSsf(f1, "");  // t0.
    co_await InitSsf(f2, "");  // t1 > t0.

    co_await protocols::HalfmoonWriteWrite(f2, "X", "x-f2");
    co_await protocols::HalfmoonWriteRead(f2, "Y", false);

    co_await protocols::HalfmoonWriteWrite(f1, "X", "x-f1");  // (t0,1): rejected, as before.
    // The extension logs a sync before the consecutive write to Y, so this write is ordered
    // after everything above — including F2's read of Y.
    co_await protocols::HalfmoonWriteWrite(f1, "Y", "y-f1");
    EXPECT_EQ(c->kv_state().Get("X").value_or(""), "x-f2");
    EXPECT_EQ(c->kv_state().Get("Y").value_or(""), "y-f1");
    // The sync record is the observable difference: F1 logged init + sync = 2 records.
    EXPECT_EQ(c->log_space().StreamLength("F1"), 2u);
  }(&cluster));
  cluster.scheduler().Run();
}

TEST(OrderedWritesTest, SyncOnlyBetweenWritesToDifferentObjects) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.scheduler().Spawn([](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0, /*ordered=*/true);
    co_await InitSsf(f1, "");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "v1");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "v2");  // Same object: no sync needed.
    EXPECT_EQ(c->log_space().StreamLength("F1"), 1u);       // Init only.
    co_await protocols::HalfmoonWriteWrite(f1, "L", "v3");  // Different object: sync.
    EXPECT_EQ(c->log_space().StreamLength("F1"), 2u);
    EXPECT_EQ(c->kv_state().Get("K").value_or(""), "v2");
    EXPECT_EQ(c->kv_state().Get("L").value_or(""), "v3");
  }(&cluster));
  cluster.scheduler().Run();
}

TEST(OrderedWritesTest, InterveningReadSuppressesTheSync) {
  // A logged read between the writes already pins the order; the extension must not pay for
  // a second record.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.scheduler().Spawn([](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0, /*ordered=*/true);
    co_await InitSsf(f1, "");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "v1");
    co_await protocols::HalfmoonWriteRead(f1, "K", false);  // Logged read.
    co_await protocols::HalfmoonWriteWrite(f1, "L", "v2");
    // Init + read log: 2 records, no extra sync.
    EXPECT_EQ(c->log_space().StreamLength("F1"), 2u);
  }(&cluster));
  cluster.scheduler().Run();
}

TEST(OrderedWritesTest, DisabledModeStaysLogFree) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.scheduler().Spawn([](runtime::Cluster* c) -> sim::Task<void> {
    Env f1 = MakeEnv(*c, "F1", 0, /*ordered=*/false);
    co_await InitSsf(f1, "");
    co_await protocols::HalfmoonWriteWrite(f1, "K", "v1");
    co_await protocols::HalfmoonWriteWrite(f1, "L", "v2");
    co_await protocols::HalfmoonWriteWrite(f1, "M", "v3");
    EXPECT_EQ(c->log_space().StreamLength("F1"), 1u);  // Init only: fully log-free.
  }(&cluster));
  cluster.scheduler().Run();
}

TEST(OrderedWritesTest, ExactlyOnceUnderCrashSweepWithOrderedWrites) {
  // End-to-end: the extension's sync records replay positionally like any logged step.
  auto run = [](int64_t crash_site) -> std::pair<int64_t, Value> {
    TestWorldOptions options;
    options.protocol = ProtocolKind::kHalfmoonWrite;
    TestWorld world(options);
    // Rebuild the runtime with ordered writes enabled.
    core::RuntimeConfig config;
    config.default_protocol = ProtocolKind::kHalfmoonWrite;
    config.preserve_write_order = true;
    core::SsfRuntime runtime(&world.cluster(), config);
    runtime.PopulateObject("a", EncodeInt64(0));
    runtime.PopulateObject("b", EncodeInt64(0));
    runtime.RegisterFunction("two_writes", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value a = co_await ctx.Read("a");
      co_await ctx.Write("a", EncodeInt64(DecodeInt64(a) + 1));
      co_await ctx.Write("b", EncodeInt64(DecodeInt64(a) + 1));  // Consecutive, different key.
      co_return "";
    });
    runtime.RegisterFunction("read_ab", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value a = co_await ctx.Read("a");
      Value b = co_await ctx.Read("b");
      co_return a + "," + b;
    });
    if (crash_site >= 0) {
      world.cluster().failure_injector().CrashAtSiteHits({crash_site});
    }
    bool done = false;
    world.scheduler().Spawn([](core::SsfRuntime* rt, bool* done) -> sim::Task<void> {
      co_await rt->InvokeSsf("two_writes", Value{});
      co_await rt->InvokeSsf("two_writes", Value{});
      *done = true;
    }(&runtime, &done));
    world.scheduler().Run();
    HM_CHECK(done);
    int64_t sites = world.cluster().failure_injector().site_hits();
    world.cluster().failure_injector().CrashAtSiteHits({});
    Value state;
    bool read_done = false;
    world.scheduler().Spawn([](core::SsfRuntime* rt, Value* out, bool* done)
                                -> sim::Task<void> {
      *out = co_await rt->InvokeSsf("read_ab", Value{});
      *done = true;
    }(&runtime, &state, &read_done));
    world.scheduler().Run();
    HM_CHECK(read_done);
    return {sites, state};
  };

  auto [sites, clean] = run(-1);
  ASSERT_EQ(clean, "2,2");
  for (int64_t k = 0; k < sites; ++k) {
    auto [_, state] = run(k);
    EXPECT_EQ(state, "2,2") << "crash at site " << k;
  }
}

}  // namespace
}  // namespace halfmoon
