// Protocol switching tests (§4.7, §5.2): pauseless, fault-tolerant, and correct across the
// BEGIN/transitional/END phases in both directions.
#include <array>

#include <gtest/gtest.h>

#include "src/core/switch_manager.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using core::SwitchManager;
using core::SwitchReport;
using testing::TestWorld;
using testing::TestWorldOptions;

TestWorldOptions SwitchingWorld(ProtocolKind initial) {
  TestWorldOptions options;
  options.protocol = initial;
  options.enable_switching = true;
  return options;
}

void RegisterCounter(TestWorld& world) {
  world.runtime().PopulateObject("counter", EncodeInt64(0));
  world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    co_await ctx.Write("counter", EncodeInt64(DecodeInt64(v) + 1));
    co_return "";
  });
  world.Register("read_counter", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("counter");
  });
}

// Runs a switch to completion and returns the report.
SwitchReport DoSwitch(TestWorld& world, SwitchManager& manager, ProtocolKind target) {
  SwitchReport report;
  bool done = false;
  world.scheduler().Spawn([](SwitchManager* m, ProtocolKind t, SwitchReport* out,
                             bool* done) -> sim::Task<void> {
    *out = co_await m->SwitchTo(t);
    *done = true;
  }(&manager, target, &report, &done));
  world.scheduler().Run();
  HM_CHECK(done);
  return report;
}

TEST(SwitchingTest, WritesBeforeSwitchVisibleAfterSwitchToRead) {
  TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonWrite));
  RegisterCounter(world);
  for (int i = 0; i < 3; ++i) world.Call("incr");

  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  SwitchReport report = DoSwitch(world, manager, ProtocolKind::kHalfmoonRead);
  EXPECT_GT(report.end_seqnum, report.begin_seqnum);

  // Post-switch SSFs resolve Halfmoon-read from the transition log; the value written under
  // Halfmoon-write (the LATEST slot) must be visible through the freshness comparison.
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 3);
  for (int i = 0; i < 3; ++i) world.Call("incr");
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 6);
}

TEST(SwitchingTest, WritesBeforeSwitchVisibleAfterSwitchToWrite) {
  TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonRead));
  RegisterCounter(world);
  for (int i = 0; i < 3; ++i) world.Call("incr");

  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  DoSwitch(world, manager, ProtocolKind::kHalfmoonWrite);

  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 3);
  for (int i = 0; i < 3; ++i) world.Call("incr");
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 6);
}

TEST(SwitchingTest, RoundTripSwitchPreservesState) {
  TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonWrite));
  RegisterCounter(world);
  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);

  world.Call("incr");
  DoSwitch(world, manager, ProtocolKind::kHalfmoonRead);
  world.Call("incr");
  DoSwitch(world, manager, ProtocolKind::kHalfmoonWrite);
  world.Call("incr");
  DoSwitch(world, manager, ProtocolKind::kHalfmoonRead);
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), 3);
  EXPECT_EQ(manager.history().size(), 3u);
}

TEST(SwitchingTest, SwitchIsPauselessForInFlightSsfs) {
  // SSFs keep executing during the switch window; those overlapping BEGIN..END use the
  // transitional protocol (visible as write-log records AND LATEST updates).
  TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonWrite));
  RegisterCounter(world);

  // Launch a batch of increments and start the switch while they are in flight.
  int done_count = 0;
  std::array<bool, 8> done{};
  for (int i = 0; i < 8; ++i) {
    world.CallAsync("incr", "", nullptr, &done[i]);
  }
  world.scheduler().RunUntil(Milliseconds(2));  // Everything launched, none finished.

  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  SwitchReport report;
  bool switch_done = false;
  world.scheduler().Spawn([](SwitchManager* m, SwitchReport* out, bool* flag)
                              -> sim::Task<void> {
    *out = co_await m->SwitchTo(ProtocolKind::kHalfmoonRead);
    *flag = true;
  }(&manager, &report, &switch_done));

  world.scheduler().Run();
  EXPECT_TRUE(switch_done);
  for (int i = 0; i < 8; ++i) done_count += done[i] ? 1 : 0;
  EXPECT_EQ(done_count, 8);

  // Serial increments can be lost to races between concurrent instances (no transactions),
  // but exactly-once still bounds the counter and post-switch reads must work.
  int64_t final = DecodeInt64(world.Call("read_counter"));
  EXPECT_GE(final, 1);
  EXPECT_LE(final, 8);
  for (int i = 0; i < 2; ++i) world.Call("incr");
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), final + 2);
}

TEST(SwitchingTest, ExactlyOnceHoldsAcrossSwitchUnderCrashSweep) {
  // Enumerate crash sites for a workload that spans a switch; exactly-once must hold at every
  // site, including crashes inside the transitional protocol.
  auto run = [](int64_t crash_site) -> int64_t {
    TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonWrite));
    RegisterCounter(world);
    if (crash_site >= 0) {
      world.cluster().failure_injector().CrashAtSiteHits({crash_site});
    }
    SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
    world.Call("incr");
    world.Call("incr");
    DoSwitch(world, manager, ProtocolKind::kHalfmoonRead);
    world.Call("incr");
    world.Call("incr");
    int64_t sites = world.cluster().failure_injector().site_hits();
    world.cluster().failure_injector().CrashAtSiteHits({});
    int64_t count = DecodeInt64(world.Call("read_counter"));
    return crash_site < 0 ? sites : count;
  };

  int64_t sites = run(-1);
  ASSERT_GT(sites, 0);
  for (int64_t k = 0; k < sites; ++k) {
    EXPECT_EQ(run(k), 4) << "crash at site " << k;
  }
}

TEST(SwitchingTest, TransitionalPhaseAppliesWhileSwitchInProgress) {
  // Hold the switch open with a long-running SSF; a fresh SSF starting in the window must run
  // the transitional protocol: its write appears in BOTH versioning schemes.
  TestWorld world(SwitchingWorld(ProtocolKind::kHalfmoonWrite));
  world.Register("sleeper", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 2000; ++i) co_await ctx.Compute();
    co_return "";
  });
  world.Register("write_x", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("x", "transitional-value");
    co_return "";
  });

  bool sleeper_done = false;
  world.CallAsync("sleeper", "", nullptr, &sleeper_done);
  world.scheduler().RunUntil(Milliseconds(5));

  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  bool switch_done = false;
  SwitchReport report;
  world.scheduler().Spawn([](SwitchManager* m, SwitchReport* out, bool* flag)
                              -> sim::Task<void> {
    *out = co_await m->SwitchTo(ProtocolKind::kHalfmoonRead);
    *flag = true;
  }(&manager, &report, &switch_done));
  world.scheduler().RunUntil(Milliseconds(10));
  ASSERT_FALSE(switch_done);  // The sleeper holds the switch open.

  bool write_done = false;
  world.CallAsync("write_x", "", nullptr, &write_done);
  world.scheduler().RunUntil(Milliseconds(40));
  ASSERT_TRUE(write_done);
  ASSERT_FALSE(switch_done);

  // Transitional write: LATEST slot updated AND a version + write-log record created.
  EXPECT_EQ(world.cluster().kv_state().Get("x").value_or(""), "transitional-value");
  EXPECT_EQ(world.cluster().kv_state().VersionCount(world.ObjectIdFor("x")), 1u);
  EXPECT_GT(world.cluster().log_space().StreamLength(sharedlog::WriteLogTag("x")), 0u);

  world.scheduler().Run();
  EXPECT_TRUE(switch_done);
  EXPECT_GT(report.SwitchingDelay(), 0);
}

}  // namespace
}  // namespace halfmoon
