// Cross-cutting integration tests: whole-system determinism, GC running concurrently with
// switching and failures, and long mixed scenarios exercising every module together.

#include <gtest/gtest.h>

#include "src/core/gc_service.h"
#include "src/core/switch_manager.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::GcService;
using core::ProtocolKind;
using core::SwitchManager;
using testing::TestWorld;
using testing::TestWorldOptions;

// The whole simulation is deterministic per seed: identical final clocks, latency samples,
// and storage footprints across two runs.
TEST(IntegrationTest, EndToEndRunsAreBitReproducible) {
  auto run = [](uint64_t seed) {
    runtime::ClusterConfig ccfg;
    ccfg.seed = seed;
    runtime::Cluster cluster(ccfg);
    core::RuntimeConfig rcfg;
    rcfg.default_protocol = ProtocolKind::kHalfmoonRead;
    core::SsfRuntime runtime(&cluster, rcfg);
    cluster.failure_injector().SetCrashProbability(0.01);
    cluster.failure_injector().SetDuplicateProbability(0.05);

    workloads::SyntheticConfig config;
    config.num_objects = 200;
    config.ops_per_request = 6;
    workloads::SyntheticWorkload synthetic(&runtime, config);
    synthetic.Setup();

    workloads::LoadGenConfig load;
    load.requests_per_second = 100;
    load.warmup = 0;
    load.duration = Seconds(3);
    workloads::LoadGenerator generator(&runtime, load, [&synthetic]() {
      return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                            synthetic.NextInput());
    });
    generator.RunToCompletion();
    return std::make_tuple(cluster.scheduler().Now(), generator.latency().Median(),
                           cluster.log_space().CurrentBytes(),
                           cluster.kv_state().CurrentBytes(),
                           runtime.stats().crashes, runtime.stats().attempts);
  };
  EXPECT_EQ(run(99), run(99));
  // Different seeds diverge (the driver rounds the final clock to whole seconds, so compare
  // the latency distribution instead).
  EXPECT_NE(std::get<1>(run(99)), std::get<1>(run(100)));
}

TEST(IntegrationTest, GcRunsSafelyDuringSwitchingAndCrashes) {
  TestWorldOptions options;
  options.protocol = ProtocolKind::kHalfmoonWrite;
  options.enable_switching = true;
  TestWorld world(options);
  world.runtime().PopulateObject("counter", EncodeInt64(0));
  world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    co_await ctx.Write("counter", EncodeInt64(DecodeInt64(v) + 1));
    co_return "";
  });
  world.Register("read_counter", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("counter");
  });

  GcService gc(&world.cluster(), Milliseconds(200));
  gc.Start();
  world.cluster().failure_injector().SetCrashProbability(0.02);

  SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  int done = 0;
  constexpr int kBatch = 10;
  // Phase 1 under Halfmoon-write with failures and aggressive GC.
  for (int i = 0; i < kBatch; ++i) {
    world.CallAsync("incr", "", nullptr, nullptr);
  }
  world.scheduler().RunUntil(Seconds(1));

  // Switch while more increments arrive.
  bool switched = false;
  world.scheduler().Spawn([](SwitchManager* m, bool* flag) -> sim::Task<void> {
    co_await m->SwitchTo(ProtocolKind::kHalfmoonRead);
    *flag = true;
  }(&manager, &switched));
  for (int i = 0; i < kBatch; ++i) {
    world.CallAsync("incr", "", nullptr, nullptr);
  }
  world.scheduler().RunUntil(Seconds(3));
  EXPECT_TRUE(switched);

  // Serial tail to pin the final count deterministically relative to the async phase:
  // concurrent increments may race each other (lost updates are not a fault-tolerance
  // anomaly), so only bound the async contribution and check the serial tail exactly.
  world.cluster().failure_injector().SetCrashProbability(0.0);
  world.scheduler().RunUntil(Seconds(10));
  // Stop the GC daemon before Call(), which drains the event queue to completion.
  gc.Stop();
  int64_t after_async = DecodeInt64(world.Call("read_counter"));
  EXPECT_GE(after_async, 1);
  EXPECT_LE(after_async, 2 * kBatch);
  for (int i = 0; i < 3; ++i) {
    world.Call("incr");
    ++done;
  }
  EXPECT_EQ(DecodeInt64(world.Call("read_counter")), after_async + done);
  EXPECT_GT(gc.stats().scans, 0);
}

TEST(IntegrationTest, MixedProtocolsOverDistinctClustersDoNotInterfere) {
  // Two independent worlds with different protocols progress independently — a guard against
  // accidental global state.
  TestWorldOptions read_options;
  read_options.protocol = ProtocolKind::kHalfmoonRead;
  TestWorld read_world(read_options);
  TestWorldOptions write_options;
  write_options.protocol = ProtocolKind::kHalfmoonWrite;
  TestWorld write_world(write_options);

  for (TestWorld* world : {&read_world, &write_world}) {
    world->runtime().PopulateObject("x", "init");
    world->Register("set", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_await ctx.Write("x", ctx.input());
      co_return "";
    });
    world->Register("get", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_return co_await ctx.Read("x");
    });
  }
  read_world.Call("set", "from-read-world");
  write_world.Call("set", "from-write-world");
  EXPECT_EQ(read_world.Call("get"), "from-read-world");
  EXPECT_EQ(write_world.Call("get"), "from-write-world");
}

TEST(IntegrationTest, TenThousandInvocationsStayConsistent) {
  // A volume test: sustained load with periodic GC; the serial check at the end must see
  // every prior effect (the §4.4 real-time boundary) and storage must stay bounded.
  TestWorldOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  TestWorld world(options);
  workloads::SyntheticConfig config;
  config.num_objects = 500;
  config.ops_per_request = 4;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  GcService gc(&world.cluster(), Seconds(2));
  gc.Start();
  workloads::LoadGenConfig load;
  load.requests_per_second = 500;
  load.warmup = 0;
  load.duration = Seconds(20);
  workloads::LoadGenerator generator(&world.runtime(), load, [&synthetic]() {
    return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                          synthetic.NextInput());
  });
  generator.RunToCompletion();
  gc.Stop();

  EXPECT_GE(generator.completed(), 9000);
  // GC keeps the version population near one live version per object (plus in-flight).
  size_t total_versions = 0;
  for (int i = 0; i < config.num_objects; ++i) {
    total_versions += world.cluster().kv_state().VersionCount(world.ObjectIdFor(synthetic.KeyFor(i)));
  }
  EXPECT_LT(total_versions, static_cast<size_t>(config.num_objects) * 4);
}

}  // namespace
}  // namespace halfmoon
