// Tests of the §4.6 protocol-choice criterion.

#include <gtest/gtest.h>

#include "src/core/advisor.h"

namespace halfmoon::core {
namespace {

WorkloadProfile Profile(double read_ratio) {
  WorkloadProfile p;
  p.read_probability = read_ratio;
  p.write_probability = 1.0 - read_ratio;
  return p;
}

TEST(AdvisorTest, ReadHeavyWorkloadPrefersHalfmoonRead) {
  AdvisorReport report = AnalyzeWorkload(Profile(0.9));
  EXPECT_EQ(report.runtime_choice, ProtocolKind::kHalfmoonRead);
  EXPECT_EQ(report.storage_choice, ProtocolKind::kHalfmoonRead);
  EXPECT_EQ(report.recommendation, ProtocolKind::kHalfmoonRead);
}

TEST(AdvisorTest, WriteHeavyWorkloadPrefersHalfmoonWrite) {
  AdvisorReport report = AnalyzeWorkload(Profile(0.1));
  EXPECT_EQ(report.runtime_choice, ProtocolKind::kHalfmoonWrite);
  EXPECT_EQ(report.storage_choice, ProtocolKind::kHalfmoonWrite);
  EXPECT_EQ(report.recommendation, ProtocolKind::kHalfmoonWrite);
}

TEST(AdvisorTest, RuntimeBoundaryIsTwoThirdsForPrototypeCostRatio) {
  EXPECT_DOUBLE_EQ(RuntimeBoundaryReadRatio(Profile(0.5)), 2.0 / 3.0);
}

TEST(AdvisorTest, RuntimeBoundaryMovesWithCostRatio) {
  WorkloadProfile p = Profile(0.5);
  p.write_cost_ratio = 1.0;  // Equal extra costs -> boundary at 0.5.
  EXPECT_DOUBLE_EQ(RuntimeBoundaryReadRatio(p), 0.5);
  p.write_cost_ratio = 3.0;
  EXPECT_DOUBLE_EQ(RuntimeBoundaryReadRatio(p), 0.75);
}

TEST(AdvisorTest, StorageBoundaryApproachesHalfForLargeObjects) {
  WorkloadProfile p = Profile(0.5);
  p.value_bytes = 1 << 20;  // 1 MiB objects dwarf record metadata.
  EXPECT_NEAR(StorageBoundaryReadRatio(p), 0.5, 0.01);
}

TEST(AdvisorTest, StorageBoundaryExceedsHalfForSmallObjects) {
  // §6.3: "the actual boundary is slightly higher, because Halfmoon-read logs twice for each
  // write, while Halfmoon-write logs once for each read".
  WorkloadProfile p = Profile(0.5);
  p.value_bytes = 256;
  p.meta_bytes = 48;
  double boundary = StorageBoundaryReadRatio(p);
  EXPECT_GT(boundary, 0.5);
  EXPECT_LT(boundary, 0.75);
}

TEST(AdvisorTest, StorageFormulasMatchEquationsByHand) {
  WorkloadProfile p;
  p.read_probability = 0.6;
  p.write_probability = 0.4;
  p.arrival_rate = 100.0;
  p.function_lifetime_s = 0.05;
  p.gc_delay_s = 10.0;
  p.meta_bytes = 48;
  p.value_bytes = 256;
  AdvisorReport r = AnalyzeWorkload(p);
  const double window = 100.0 * 10.05;
  EXPECT_DOUBLE_EQ(r.storage_hm_write, 256 + 0.6 * window * (48 + 256));
  EXPECT_DOUBLE_EQ(r.storage_hm_read, (1 + 0.4 * window) * (2 * 48 + 256));
}

TEST(AdvisorTest, AtRuntimeBoundaryChoicesTie) {
  // P_r = 2 P_w with C_w = 2 C_r: extra costs are equal; recommendation falls back to storage.
  // Use exactly-representable probabilities so the tie is bit-exact.
  WorkloadProfile p;
  p.read_probability = 0.5;
  p.write_probability = 0.25;
  AdvisorReport r = AnalyzeWorkload(p);
  EXPECT_DOUBLE_EQ(r.runtime_hm_read, r.runtime_hm_write);
  EXPECT_EQ(r.recommendation, r.storage_choice);
}

TEST(AdvisorTest, GcIntervalDoesNotMoveStorageBoundary) {
  // §6.3 observes the boundary condition is unaffected by the GC interval.
  WorkloadProfile fast = Profile(0.5);
  fast.gc_delay_s = 10.0;
  WorkloadProfile slow = Profile(0.5);
  slow.gc_delay_s = 60.0;
  EXPECT_NEAR(StorageBoundaryReadRatio(fast), StorageBoundaryReadRatio(slow), 0.02);
}

}  // namespace
}  // namespace halfmoon::core
