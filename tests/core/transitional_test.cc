// The transitional protocol and dual reads (§5.2): freshness comparison between the LATEST
// slot and the multi-version path, exercised directly over hand-built Envs.

#include <gtest/gtest.h>

#include "src/core/log_steps.h"
#include "src/core/protocols.h"
#include "src/runtime/cluster.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

namespace protocols = core::protocols;
using core::Env;
using core::InitSsf;

Env MakeEnv(runtime::Cluster& cluster, const std::string& id, int node) {
  Env env;
  env.instance_id = id;
  env.cluster = &cluster;
  env.node = &cluster.node(node);
  return env;
}

void RunScript(runtime::Cluster& cluster, sim::Task<void> script) {
  cluster.scheduler().Spawn(std::move(script));
  cluster.scheduler().Run();
}

TEST(TransitionalTest, WriteUpdatesBothVersioningSchemes) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f = MakeEnv(*c, "F", 0);
    co_await InitSsf(f, "");
    co_await protocols::TransitionalWrite(f, "k", "both");
    EXPECT_EQ(c->kv_state().Get("k").value_or(""), "both");
    EXPECT_EQ(c->kv_state().VersionCount(testing::ObjectIdFor(*c, "k")), 1u);
    EXPECT_GT(c->log_space().StreamLength(sharedlog::WriteLogTag("k")), 0u);
  }(&cluster));
}

TEST(TransitionalTest, WriteUsesDeterministicVersionIds) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f = MakeEnv(*c, "F", 0);
    co_await InitSsf(f, "");
    co_await protocols::TransitionalWrite(f, "k", "v");
    EXPECT_TRUE(c->kv_state().GetVersioned(testing::ObjectIdFor(*c, "k"), "F#1").has_value());
  }(&cluster));
}

TEST(TransitionalTest, DualReadPrefersFresherLatestSlot) {
  // A Halfmoon-write-era update (LATEST) newer than the last write-log record must win.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env writer = MakeEnv(*c, "W", 0);
    co_await InitSsf(writer, "");
    co_await protocols::HalfmoonReadWrite(writer, "k", "old-versioned");

    Env hw = MakeEnv(*c, "HW", 1);
    co_await InitSsf(hw, "");
    co_await protocols::HalfmoonWriteWrite(hw, "k", "new-latest");

    Env reader = MakeEnv(*c, "R", 2);
    co_await InitSsf(reader, "");
    Value v = co_await protocols::DualRead(reader, "k");
    EXPECT_EQ(v, "new-latest");
  }(&cluster));
}

TEST(TransitionalTest, DualReadPrefersFresherVersionedPath) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env hw = MakeEnv(*c, "HW", 0);
    co_await InitSsf(hw, "");
    co_await protocols::HalfmoonWriteWrite(hw, "k", "old-latest");

    Env writer = MakeEnv(*c, "W", 1);
    co_await InitSsf(writer, "");
    co_await protocols::HalfmoonReadWrite(writer, "k", "new-versioned");

    Env reader = MakeEnv(*c, "R", 2);
    co_await InitSsf(reader, "");
    Value v = co_await protocols::DualRead(reader, "k");
    EXPECT_EQ(v, "new-versioned");
  }(&cluster));
}

TEST(TransitionalTest, DualReadOfMissingObjectIsEmpty) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env reader = MakeEnv(*c, "R", 0);
    co_await InitSsf(reader, "");
    Value v = co_await protocols::DualRead(reader, "never-written");
    EXPECT_EQ(v, "");
  }(&cluster));
}

TEST(TransitionalTest, DualReadWithOnlyLatestSlot) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.kv_state().Put(0, "k", "latest-only");
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env reader = MakeEnv(*c, "R", 0);
    co_await InitSsf(reader, "");
    Value v = co_await protocols::DualRead(reader, "k");
    EXPECT_EQ(v, "latest-only");
  }(&cluster));
}

TEST(TransitionalTest, TransitionalReadLogsItsResult) {
  runtime::Cluster cluster(runtime::ClusterConfig{});
  cluster.kv_state().Put(0, "k", "v");
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f = MakeEnv(*c, "F", 0);
    co_await InitSsf(f, "");
    size_t before = c->log_space().StreamLength("F");
    Value v = co_await protocols::TransitionalRead(f, "k");
    EXPECT_EQ(v, "v");
    EXPECT_EQ(c->log_space().StreamLength("F"), before + 1);  // One read record.
  }(&cluster));
}

TEST(TransitionalTest, TransitionalWriteReplayIsIdempotent) {
  // Re-executing a transitional write (same instance, recovered step log) must not create a
  // second version or bump the LATEST slot again.
  runtime::Cluster cluster(runtime::ClusterConfig{});
  RunScript(cluster, [](runtime::Cluster* c) -> sim::Task<void> {
    Env f = MakeEnv(*c, "F", 0);
    co_await InitSsf(f, "");
    co_await protocols::TransitionalWrite(f, "k", "v");

    // A later writer updates the object.
    Env g = MakeEnv(*c, "G", 1);
    co_await InitSsf(g, "");
    co_await protocols::TransitionalWrite(g, "k", "newer");

    // F's retry replays its write; it must not clobber G's newer value.
    Env f_retry = MakeEnv(*c, "F", 2);
    co_await InitSsf(f_retry, "");
    co_await protocols::TransitionalWrite(f_retry, "k", "v");
    EXPECT_EQ(c->kv_state().Get("k").value_or(""), "newer");
    EXPECT_EQ(c->kv_state().VersionCount(testing::ObjectIdFor(*c, "k")), 2u);  // One version per distinct write.
  }(&cluster));
}

}  // namespace
}  // namespace halfmoon
