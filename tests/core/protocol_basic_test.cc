// Failure-free functional tests for every protocol: reads see writes, workflows compose,
// per-protocol logging footprints match the §3 table.

#include <string>

#include <gtest/gtest.h>

#include "src/core/env.h"
#include "tests/testing/test_world.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

class ProtocolBasicTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolBasicTest,
                         ::testing::Values(ProtocolKind::kUnsafe, ProtocolKind::kBoki,
                                           ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TestWorldOptions Opts(ProtocolKind kind) {
  TestWorldOptions options;
  options.protocol = kind;
  return options;
}

TEST_P(ProtocolBasicTest, WriteThenReadRoundTrip) {
  TestWorld world(Opts(GetParam()));
  world.Register("set_get", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("x", "hello");
    co_return co_await ctx.Read("x");
  });
  EXPECT_EQ(world.Call("set_get"), "hello");
}

TEST_P(ProtocolBasicTest, ReadMissingKeyReturnsEmpty) {
  TestWorld world(Opts(GetParam()));
  world.Register("read_missing", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("never-written");
  });
  EXPECT_EQ(world.Call("read_missing"), "");
}

TEST_P(ProtocolBasicTest, ReadSeesPopulatedObject) {
  TestWorld world(Opts(GetParam()));
  world.runtime().PopulateObject("seeded", "seed-value");
  world.Register("reader", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("seeded");
  });
  EXPECT_EQ(world.Call("reader"), "seed-value");
}

TEST_P(ProtocolBasicTest, WritesAreVisibleToLaterInvocations) {
  // §4.4: operations that finish before an SSF starts are visible to it (the init record
  // advances cursorTS past them).
  TestWorld world(Opts(GetParam()));
  world.Register("writer", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("k", ctx.input());
    co_return "";
  });
  world.Register("reader", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("k");
  });
  world.Call("writer", "v1");
  EXPECT_EQ(world.Call("reader"), "v1");
  world.Call("writer", "v2");
  EXPECT_EQ(world.Call("reader"), "v2");
}

TEST_P(ProtocolBasicTest, SerialCounterIncrements) {
  TestWorld world(Opts(GetParam()));
  world.runtime().PopulateObject("counter", EncodeInt64(0));
  world.Register("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("counter");
    int64_t n = DecodeInt64(v);
    co_await ctx.Write("counter", EncodeInt64(n + 1));
    co_return EncodeInt64(n + 1);
  });
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(DecodeInt64(world.Call("incr")), i);
  }
}

TEST_P(ProtocolBasicTest, InvokeComposesWorkflows) {
  TestWorld world(Opts(GetParam()));
  world.runtime().PopulateObject("acc", EncodeInt64(100));
  world.Register("add", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value v = co_await ctx.Read("acc");
    int64_t n = DecodeInt64(v) + DecodeInt64(ctx.input());
    co_await ctx.Write("acc", EncodeInt64(n));
    co_return EncodeInt64(n);
  });
  world.Register("workflow", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Invoke("add", EncodeInt64(1));
    Value result = co_await ctx.Invoke("add", EncodeInt64(2));
    co_return result;
  });
  EXPECT_EQ(DecodeInt64(world.Call("workflow")), 103);
}

TEST_P(ProtocolBasicTest, NestedInvokeThreeLevels) {
  TestWorld world(Opts(GetParam()));
  world.Register("leaf", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Write("leaf-key", ctx.input());
    co_return ctx.input() + "!";
  });
  world.Register("mid", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value r = co_await ctx.Invoke("leaf", ctx.input() + "-mid");
    co_return r;
  });
  world.Register("root", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value r = co_await ctx.Invoke("mid", "root");
    co_return r;
  });
  EXPECT_EQ(world.Call("root"), "root-mid!");
}

TEST_P(ProtocolBasicTest, ComputeAdvancesTime) {
  TestWorld world(Opts(GetParam()));
  world.Register("compute", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Compute();
    co_return "done";
  });
  EXPECT_EQ(world.Call("compute"), "done");
  EXPECT_GT(world.scheduler().Now(), 0);
}

TEST_P(ProtocolBasicTest, SyncIsHarmless) {
  TestWorld world(Opts(GetParam()));
  world.runtime().PopulateObject("s", "v");
  world.Register("sync_read", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Sync();
    co_return co_await ctx.Read("s");
  });
  EXPECT_EQ(world.Call("sync_read"), "v");
}

// ---- Logging-footprint assertions (the asymmetry that gives Halfmoon its name) ----

int64_t TotalAppends(TestWorld& world) { return world.cluster().TotalLogAppends(); }

TEST(LoggingFootprintTest, HalfmoonReadLogsNoReads) {
  TestWorld world(Opts(ProtocolKind::kHalfmoonRead));
  world.runtime().PopulateObject("x", "v");
  world.Register("reads", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 10; ++i) co_await ctx.Read("x");
    co_return "";
  });
  world.Call("reads");
  // Only the init record is appended; ten reads add nothing.
  EXPECT_EQ(TotalAppends(world), 1);
}

TEST(LoggingFootprintTest, HalfmoonWriteLogsNoWrites) {
  TestWorld world(Opts(ProtocolKind::kHalfmoonWrite));
  world.Register("writes", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 10; ++i) co_await ctx.Write("x", "v");
    co_return "";
  });
  world.Call("writes");
  EXPECT_EQ(TotalAppends(world), 1);  // Init only.
}

TEST(LoggingFootprintTest, HalfmoonWriteLogsEveryRead) {
  TestWorld world(Opts(ProtocolKind::kHalfmoonWrite));
  world.runtime().PopulateObject("x", "v");
  world.Register("reads", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 10; ++i) co_await ctx.Read("x");
    co_return "";
  });
  world.Call("reads");
  EXPECT_EQ(TotalAppends(world), 1 + 10);  // Init + one record per read.
}

TEST(LoggingFootprintTest, HalfmoonReadLogsWritePairs) {
  TestWorld world(Opts(ProtocolKind::kHalfmoonRead));
  world.Register("writes", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 10; ++i) co_await ctx.Write("x", "v");
    co_return "";
  });
  world.Call("writes");
  EXPECT_EQ(TotalAppends(world), 1 + 2 * 10);  // Init + (version, commit) per write.
}

TEST(LoggingFootprintTest, BokiLogsBothSides) {
  TestWorld world(Opts(ProtocolKind::kBoki));
  world.runtime().PopulateObject("x", "v");
  world.Register("mixed", [](core::SsfContext& ctx) -> sim::Task<Value> {
    for (int i = 0; i < 5; ++i) {
      co_await ctx.Read("x");
      co_await ctx.Write("x", "v");
    }
    co_return "";
  });
  world.Call("mixed");
  // Init + 1 per read + 2 per write (version log + async commit marker).
  EXPECT_EQ(TotalAppends(world), 1 + 5 + 2 * 5);
}

TEST(LoggingFootprintTest, UnsafeLogsNothing) {
  TestWorld world(Opts(ProtocolKind::kUnsafe));
  world.runtime().PopulateObject("x", "v");
  world.Register("mixed", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Read("x");
    co_await ctx.Write("x", "w");
    co_return "";
  });
  world.Call("mixed");
  EXPECT_EQ(TotalAppends(world), 0);
}

}  // namespace
}  // namespace halfmoon
