// Shared test harness: a small simulated cluster + runtime, and synchronous drivers that run
// the scheduler to completion.

#ifndef HALFMOON_TESTS_TESTING_TEST_WORLD_H_
#define HALFMOON_TESTS_TESTING_TEST_WORLD_H_

#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/core/ssf_runtime.h"
#include "src/runtime/cluster.h"

namespace halfmoon::testing {

// Interned write-log tag id for `key` — the handle versioned-KV assertions address objects
// by since the tag-interning change. Interns on miss so seeding helpers can use it too.
inline kvstore::ObjectId ObjectIdFor(runtime::Cluster& cluster, const std::string& key) {
  return cluster.log_space().tags().InternPrefixed(sharedlog::kWriteLogPrefix, key);
}

struct TestWorldOptions {
  core::ProtocolKind protocol = core::ProtocolKind::kHalfmoonRead;
  uint64_t seed = 1;
  bool enable_switching = false;
  int function_nodes = 4;
  int workers_per_node = 8;
  // Shared-log shard count; 0 = inherit the environment default (HM_SHARDS, usually 1).
  int log_shards = 0;
};

class TestWorld {
 public:
  explicit TestWorld(const TestWorldOptions& options = TestWorldOptions{}) {
    runtime::ClusterConfig ccfg;
    ccfg.seed = options.seed;
    ccfg.function_nodes = options.function_nodes;
    ccfg.workers_per_node = options.workers_per_node;
    if (options.log_shards > 0) ccfg.log_shards = options.log_shards;
    cluster_ = std::make_unique<runtime::Cluster>(ccfg);

    core::RuntimeConfig rcfg;
    rcfg.default_protocol = options.protocol;
    rcfg.enable_switching = options.enable_switching;
    runtime_ = std::make_unique<core::SsfRuntime>(cluster_.get(), rcfg);
  }

  runtime::Cluster& cluster() { return *cluster_; }
  kvstore::ObjectId ObjectIdFor(const std::string& key) {
    return testing::ObjectIdFor(*cluster_, key);
  }
  core::SsfRuntime& runtime() { return *runtime_; }
  sim::Scheduler& scheduler() { return cluster_->scheduler(); }

  void Register(std::string name, core::SsfBody body) {
    runtime_->RegisterFunction(std::move(name), std::move(body));
  }

  // Invokes `name` and drains the scheduler; returns the SSF result.
  Value Call(const std::string& name, Value input = Value{}) {
    Value out;
    bool done = false;
    scheduler().Spawn(CallTask(name, std::move(input), &out, &done));
    scheduler().Run();
    HM_CHECK_MSG(done, "TestWorld::Call: invocation did not complete");
    return out;
  }

  // Spawns an invocation without waiting (for concurrency tests); pair with scheduler().Run().
  void CallAsync(const std::string& name, Value input = Value{}, Value* out = nullptr,
                 bool* done = nullptr) {
    scheduler().Spawn(CallTask(name, std::move(input), out, done));
  }

 private:
  sim::Task<void> CallTask(std::string name, Value input, Value* out, bool* done) {
    Value result = co_await runtime_->InvokeSsf(std::move(name), std::move(input));
    if (out != nullptr) *out = std::move(result);
    if (done != nullptr) *done = true;
  }

  std::unique_ptr<runtime::Cluster> cluster_;
  std::unique_ptr<core::SsfRuntime> runtime_;
};

}  // namespace halfmoon::testing

#endif  // HALFMOON_TESTS_TESTING_TEST_WORLD_H_
