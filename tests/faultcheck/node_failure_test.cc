// Node-grain failure sweeps over the durable cluster (DESIGN.md §13): kill + restart a
// whole node — the storage tier ("store": log + KV journals), the sequencer tier ("seq":
// log journal only), or a function node's soft state ("fn<i>") — at traced hit positions,
// replay the journals, and require every remaining invocation plus the consistency oracle
// to behave exactly as a crash-free run. Smoke-bounded for tier-1; HM_FAULTCHECK_FULL=1
// sweeps every traced position.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FaultPoint;
using faultcheck::PrintReport;
using faultcheck::Schedule;
using faultcheck::Workload;

const ProtocolKind kFaultTolerant[] = {
    ProtocolKind::kBoki,
    ProtocolKind::kHalfmoonRead,
    ProtocolKind::kHalfmoonWrite,
    ProtocolKind::kTransitional,
};

// Node kills ride on the depth-1 sweep (Explorer::Run always explores single crashes too,
// which under durable = 1 re-checks every crash site against the write-ahead ack gating).
// Depth-2 families are covered by explorer_test.cc and would triple the runtime here.
ExplorerOptions DurableKillOptions(ProtocolKind protocol) {
  ExplorerOptions options;
  options.protocol = protocol;
  options.durable = 1;
  options.node_kills = true;
  options.kill_domains = {"store", "seq", "fn0", "fn1"};
  options.crash_pairs = false;
  options.crash_plus_peer = false;
  options.crash_plus_gc = false;
  return options;
}

void ExpectKillSweepPasses(const Workload& workload, ExplorerOptions options) {
  Explorer explorer(workload, options);
  ExplorerReport report = explorer.Run();
  PrintReport(workload.name + "/" + core::ProtocolName(options.protocol) + "/kills", report);
  EXPECT_GT(report.baseline_sites, 0);
  EXPECT_GT(report.explored_single, 0);
  EXPECT_GT(report.explored_kill, 0);
  if (!report.AllPassed()) {
    FAIL() << report.failures.size() << " failing schedules, first: "
           << report.failures[0].schedule.ToString() << " -> " << report.failures[0].reason;
  }
}

class NodeKillSweepTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, NodeKillSweepTest, ::testing::ValuesIn(kFaultTolerant),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(NodeKillSweepTest, CounterSurvivesNodeKills) {
  ExpectKillSweepPasses(faultcheck::CounterWorkload(),
                        Bounded(DurableKillOptions(GetParam())));
}

TEST_P(NodeKillSweepTest, TransferSurvivesNodeKills) {
  ExpectKillSweepPasses(faultcheck::TransferWorkload(),
                        Bounded(DurableKillOptions(GetParam()), 3, 4, 4));
}

TEST_P(NodeKillSweepTest, WorkflowSurvivesNodeKills) {
  // Nested Invoke/InvokeAll: a storage kill can land between a child's ack and the parent's
  // post-invoke log step; replay must keep both sides' beliefs consistent.
  ExpectKillSweepPasses(faultcheck::WorkflowWorkload(),
                        Bounded(DurableKillOptions(GetParam()), 6, 8, 3));
}

TEST(NodeKillDeterminismTest, PrintedKillScheduleReplaysIdentically) {
  ExplorerOptions options = DurableKillOptions(ProtocolKind::kHalfmoonRead);
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_GT(baseline.trace.size(), 4u);

  Schedule schedule;
  schedule.points.push_back(FaultPoint::NodeKill("store", 3));
  std::string printed = schedule.ToString();
  EXPECT_EQ(printed, "kill[store]@3");
  auto reparsed = Schedule::Parse(printed);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, schedule);

  Explorer::RunOutcome direct = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome replayed = explorer.RunSchedule(*reparsed, /*record_trace=*/true);
  EXPECT_TRUE(direct.verdict.ok) << direct.verdict.failure;
  EXPECT_EQ(direct.verdict.ok, replayed.verdict.ok);
  EXPECT_EQ(direct.trace, replayed.trace);
}

TEST(NodeKillDeterminismTest, KillPlusCrashComposes) {
  // A storage kill during the victim's retry: the crash loses an attempt, the kill then
  // wipes volatile state mid-recovery. The composed schedule must still pass the oracle.
  ExplorerOptions options = DurableKillOptions(ProtocolKind::kHalfmoonWrite);
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_GT(baseline.trace.size(), 2u);

  Schedule schedule;
  schedule.points.push_back(
      FaultPoint::Crash(baseline.trace[1].site, baseline.trace[1].occurrence));
  schedule.points.push_back(FaultPoint::NodeKill("store", 4));
  Explorer::RunOutcome outcome = explorer.RunSchedule(schedule);
  EXPECT_GE(outcome.crashes, 1);
  EXPECT_TRUE(outcome.verdict.ok) << outcome.verdict.failure;
}

TEST(NodeKillScheduleCodecTest, RoundTripsAndRejectsMalformedKills) {
  Schedule schedule;
  schedule.points.push_back(FaultPoint::NodeKill("seq", 7));
  schedule.points.push_back(FaultPoint::NodeKill("fn3", 0));
  std::string printed = schedule.ToString();
  EXPECT_EQ(printed, "kill[seq]@7 kill[fn3]@0");
  auto parsed = Schedule::Parse(printed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);

  EXPECT_FALSE(Schedule::Parse("kill[]@3").has_value());
  EXPECT_FALSE(Schedule::Parse("kill[store]@x").has_value());
  EXPECT_FALSE(Schedule::Parse("kill[store]3").has_value());
}

TEST(NodeKillGuardDeathTest, KillsRequireDurableCluster) {
  // A kill against a volatile cluster has no journal to replay from — arming one must abort
  // loudly instead of silently losing state.
  ExplorerOptions options = DurableKillOptions(ProtocolKind::kHalfmoonRead);
  options.durable = 0;
  Explorer explorer(faultcheck::CounterWorkload(), options);
  Schedule schedule;
  schedule.points.push_back(FaultPoint::NodeKill("store", 0));
  EXPECT_DEATH(explorer.RunSchedule(schedule), "durable storage tier");
}

}  // namespace
}  // namespace halfmoon
