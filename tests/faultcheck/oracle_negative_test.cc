// Negative controls: the oracle is only trustworthy if it *fails* on protocols that are
// actually broken. The unsafe baseline (no logging — re-execution duplicates effects) and the
// drop-commit-append mutation (writes never become visible on the write log — lost updates)
// must each produce failing schedules under the depth-2 sweep.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FailingSchedule;
using faultcheck::Schedule;

TEST(OracleNegativeTest, UnsafeBaselineFailsTheSweep) {
  ExplorerOptions options;
  options.protocol = ProtocolKind::kUnsafe;
  Explorer explorer(faultcheck::CounterWorkload(), Bounded(options));
  ExplorerReport report = explorer.Run();
  faultcheck::PrintReport("negative/unsafe", report);

  ASSERT_FALSE(report.AllPassed()) << "unsafe protocol passed the oracle — the oracle is blind";
  // The fault-free unsafe run is correct; only faulted schedules may fail.
  for (const FailingSchedule& failure : report.failures) {
    EXPECT_FALSE(failure.schedule.empty()) << failure.reason;
    EXPECT_FALSE(failure.minimized.empty());
  }

  // The minimized schedule round-trips through its printed form and still fails — the
  // reproducibility contract for bug reports.
  const FailingSchedule& first = report.failures.front();
  auto reparsed = Schedule::Parse(first.minimized.ToString());
  ASSERT_TRUE(reparsed.has_value()) << first.minimized.ToString();
  EXPECT_EQ(*reparsed, first.minimized);
  Explorer::RunOutcome replay = explorer.RunSchedule(*reparsed);
  EXPECT_FALSE(replay.verdict.ok)
      << "minimized schedule " << first.minimized.ToString() << " no longer fails on replay";
}

TEST(OracleNegativeTest, DropCommitAppendFailsEvenWithoutFaults) {
  // Suppressing the commit append makes Halfmoon-read writes invisible to the log-free read
  // path: later invocations read stale state. The oracle must catch this at depth 0.
  ExplorerOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  options.drop_commit_append = true;
  Explorer explorer(faultcheck::CounterWorkload(), options);
  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{});
  EXPECT_FALSE(baseline.verdict.ok);
  EXPECT_FALSE(baseline.verdict.failure.empty());
}

TEST(OracleNegativeTest, DropCommitAppendFailsTheSweep) {
  ExplorerOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  options.drop_commit_append = true;
  // Every schedule fails here; skip shrinking (it re-runs per failure) and bound tightly.
  options.shrink_failures = false;
  Explorer explorer(faultcheck::CounterWorkload(), Bounded(options, 4, 6, 2));
  ExplorerReport report = explorer.Run();
  faultcheck::PrintReport("negative/drop-commit-append", report);

  ASSERT_FALSE(report.AllPassed());
  // The baseline itself is among the failures: no fault points needed to expose it.
  EXPECT_TRUE(report.failures.front().schedule.empty());
}

}  // namespace
}  // namespace halfmoon
