// Depth-2 schedule sweeps over the fault-tolerant protocols (§2, §4.2, §5.1): every explored
// schedule — crash pairs, crash + scheduled peer, crash + GC-scan timing — must pass the
// consistency oracle on every workload. Smoke-bounded for tier-1; HM_FAULTCHECK_FULL=1 runs
// the exhaustive sweep.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FaultPoint;
using faultcheck::PrintReport;
using faultcheck::Schedule;
using faultcheck::Workload;

// The four logging protocols whose executions must be indistinguishable from crash-free runs.
const ProtocolKind kFaultTolerant[] = {
    ProtocolKind::kBoki,
    ProtocolKind::kHalfmoonRead,
    ProtocolKind::kHalfmoonWrite,
    ProtocolKind::kTransitional,
};

void ExpectSweepPasses(const Workload& workload, ExplorerOptions options) {
  Explorer explorer(workload, options);
  ExplorerReport report = explorer.Run();
  PrintReport(workload.name + "/" + core::ProtocolName(options.protocol), report);
  EXPECT_GT(report.baseline_sites, 0);
  EXPECT_GT(report.explored_single, 0);
  EXPECT_GT(report.explored_pairs, 0);
  EXPECT_GT(report.explored_peer, 0);
  EXPECT_GT(report.explored_gc, 0);
  if (!report.AllPassed()) {
    FAIL() << report.failures.size() << " failing schedules, first: "
           << report.failures[0].schedule.ToString() << " -> " << report.failures[0].reason;
  }
}

class ExplorerSweepTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, ExplorerSweepTest, ::testing::ValuesIn(kFaultTolerant),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(ExplorerSweepTest, CounterSurvivesDepth2Schedules) {
  ExplorerOptions options;
  options.protocol = GetParam();
  ExpectSweepPasses(faultcheck::CounterWorkload(), Bounded(options));
}

TEST_P(ExplorerSweepTest, TransferSurvivesDepth2Schedules) {
  ExplorerOptions options;
  options.protocol = GetParam();
  ExpectSweepPasses(faultcheck::TransferWorkload(), Bounded(options, 2, 4, 4));
}

TEST_P(ExplorerSweepTest, WorkflowSurvivesDepth2Schedules) {
  // Heavier workload (nested Invoke/InvokeAll): wider strides in smoke mode.
  ExplorerOptions options;
  options.protocol = GetParam();
  ExpectSweepPasses(faultcheck::WorkflowWorkload(), Bounded(options, 5, 7, 3));
}

TEST_P(ExplorerSweepTest, CounterSurvivesDepth2SchedulesWithTwoShards) {
  // The same sweep against a tag-partitioned log: every schedule must still pass the oracle
  // when records interleave across two per-shard sequencers.
  ExplorerOptions options;
  options.protocol = GetParam();
  options.log_shards = 2;
  ExpectSweepPasses(faultcheck::CounterWorkload(), Bounded(options));
}

TEST_P(ExplorerSweepTest, TransferSurvivesDepth2SchedulesWithFourShards) {
  // Four shards on the multi-object workload: cross-shard cond-appends and GC races.
  // Smoke-strided in tier-1; exhaustive under HM_FAULTCHECK_FULL=1 like the rest.
  ExplorerOptions options;
  options.protocol = GetParam();
  options.log_shards = 4;
  ExpectSweepPasses(faultcheck::TransferWorkload(), Bounded(options, 2, 4, 4));
}

TEST_P(ExplorerSweepTest, CounterSurvivesDepth2SchedulesWithPipelinedAppends) {
  // Pipelined group commit (HM_PIPELINE-style depth 4): batch.depart crashes race the
  // victim's retry against a round still in flight, and crash pairs land across two
  // concurrently in-flight rounds. Every schedule must still pass the oracle.
  ExplorerOptions options;
  options.protocol = GetParam();
  options.pipeline_depth = 4;
  ExpectSweepPasses(faultcheck::CounterWorkload(), Bounded(options));
}

TEST_P(ExplorerSweepTest, TransferSurvivesDepth2SchedulesWithPipelinedAppends) {
  ExplorerOptions options;
  options.protocol = GetParam();
  options.pipeline_depth = 4;
  ExpectSweepPasses(faultcheck::TransferWorkload(), Bounded(options, 2, 4, 4));
}

TEST_P(ExplorerSweepTest, WorkflowSurvivesDepth2SchedulesWithPipelinedAppends) {
  ExplorerOptions options;
  options.protocol = GetParam();
  options.pipeline_depth = 4;
  ExpectSweepPasses(faultcheck::WorkflowWorkload(), Bounded(options, 5, 7, 3));
}

TEST(ExplorerDeterminismTest, BatchSitesAppearAndSurviveCrashesUnderPipelining) {
  // The group-commit crash sites registered for this PR must show up in pipelined traces,
  // and crashing at each must keep the oracle green (the depart-crash victim's record still
  // departs with the round, so its retry races the in-flight commit — the duplicate-append
  // hazard class).
  ExplorerOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  options.pipeline_depth = 4;
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  int64_t depart_hits = 0;
  int64_t reply_hits = 0;
  for (const auto& entry : baseline.trace) {
    if (entry.site == "batch.depart") ++depart_hits;
    if (entry.site == "batch.reply") ++reply_hits;
  }
  EXPECT_GT(depart_hits, 0);
  EXPECT_GT(reply_hits, 0);

  for (const char* site : {"batch.depart", "batch.reply"}) {
    Schedule schedule;
    schedule.points.push_back(FaultPoint::Crash(site, 0));
    Explorer::RunOutcome outcome = explorer.RunSchedule(schedule);
    EXPECT_GE(outcome.crashes, 1) << site;
    EXPECT_TRUE(outcome.verdict.ok) << site << ": " << outcome.verdict.failure;
  }
}

TEST(ExplorerDeterminismTest, SameScheduleSameSeedSameOutcome) {
  ExplorerOptions options;
  options.protocol = ProtocolKind::kHalfmoonRead;
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_FALSE(baseline.trace.empty());

  Schedule schedule;
  schedule.points.push_back(
      FaultPoint::Crash(baseline.trace[4].site, baseline.trace[4].occurrence));
  schedule.points.push_back(FaultPoint::GcScan(7));

  Explorer::RunOutcome first = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome second = explorer.RunSchedule(schedule, /*record_trace=*/true);
  EXPECT_EQ(first.verdict.ok, second.verdict.ok);
  EXPECT_EQ(first.verdict.failure, second.verdict.failure);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.peers, second.peers);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_GE(first.crashes, 1);
}

TEST(ExplorerDeterminismTest, PrintedScheduleReplaysIdentically) {
  // The printed form is the reproducibility contract: ToString -> Parse -> RunSchedule must
  // reproduce the execution exactly.
  ExplorerOptions options;
  options.protocol = ProtocolKind::kBoki;
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_GT(baseline.trace.size(), 6u);

  Schedule schedule;
  schedule.points.push_back(
      FaultPoint::Crash(baseline.trace[2].site, baseline.trace[2].occurrence));
  schedule.points.push_back(
      FaultPoint::Crash(baseline.trace[6].site, baseline.trace[6].occurrence));
  schedule.points.push_back(FaultPoint::PeerSpawn(5));

  std::string printed = schedule.ToString();
  auto reparsed = Schedule::Parse(printed);
  ASSERT_TRUE(reparsed.has_value()) << printed;
  EXPECT_EQ(*reparsed, schedule);

  Explorer::RunOutcome direct = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome replayed = explorer.RunSchedule(*reparsed, /*record_trace=*/true);
  EXPECT_EQ(direct.verdict.ok, replayed.verdict.ok);
  EXPECT_EQ(direct.trace, replayed.trace);
  EXPECT_EQ(direct.crashes, replayed.crashes);
}

TEST(ExplorerDeterminismTest, CrashPairsActuallyCrashTwice) {
  ExplorerOptions options;
  options.protocol = ProtocolKind::kHalfmoonWrite;
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  Schedule first;
  first.points.push_back(
      FaultPoint::Crash(baseline.trace[0].site, baseline.trace[0].occurrence));
  Explorer::RunOutcome faulted = explorer.RunSchedule(first, /*record_trace=*/true);
  ASSERT_GE(faulted.crashes, 1);
  ASSERT_GT(faulted.trace.size(), 1u);

  Schedule pair = first;
  pair.points.push_back(
      FaultPoint::Crash(faulted.trace[1].site, faulted.trace[1].occurrence));
  Explorer::RunOutcome outcome = explorer.RunSchedule(pair);
  EXPECT_GE(outcome.crashes, 2);
  EXPECT_TRUE(outcome.verdict.ok) << outcome.verdict.failure;
}

TEST(ScheduleCodecTest, RoundTripsEveryKind) {
  Schedule schedule;
  schedule.points.push_back(FaultPoint::Crash("hmr.write.after_db", 3));
  schedule.points.push_back(FaultPoint::PeerSpawn(-1));
  schedule.points.push_back(FaultPoint::GcScan(12));
  schedule.points.push_back(
      FaultPoint::SwitchBegin(ProtocolKind::kHalfmoonWrite, 9));
  std::string printed = schedule.ToString();
  EXPECT_EQ(printed,
            "crash(hmr.write.after_db#3) peer@-1 gc@12 switch[Halfmoon-write]@9");
  auto parsed = Schedule::Parse(printed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);

  EXPECT_EQ(Schedule{}.ToString(), "(no faults)");
  auto empty = Schedule::Parse("(no faults)");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(Schedule::Parse("crash(nohash)").has_value());
  EXPECT_FALSE(Schedule::Parse("peer@x").has_value());
  EXPECT_FALSE(Schedule::Parse("switch[NotAProtocol]@3").has_value());
  EXPECT_FALSE(Schedule::Parse("bogus").has_value());
}

}  // namespace
}  // namespace halfmoon
