// Shared sweep-size control for the faultcheck test suites.
//
// By default the suites run a bounded "smoke" sweep (strided candidates, capped second-fault
// positions) sized for tier-1 CI. Setting HM_FAULTCHECK_FULL=1 removes every bound and
// enumerates the full depth-2 schedule space (minutes, see EXPERIMENTS.md).

#ifndef HALFMOON_TESTS_FAULTCHECK_SWEEP_MODE_H_
#define HALFMOON_TESTS_FAULTCHECK_SWEEP_MODE_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/common/env.h"
#include "src/faultcheck/explorer.h"

namespace halfmoon::faultcheck {

inline bool FullSweep() { return EnvFlag("HM_FAULTCHECK_FULL"); }

// The faultcheck explorer always executes protocol runs on the single-threaded scheduler:
// injected schedules address events by global (time, seq) indices of ONE event loop, which
// is exactly what makes a printed failing schedule replayable (DESIGN.md §10.4). HM_PARALLEL
// therefore does not change explorer results — this prints a one-line notice in the sweep
// reports when the variable is set, so a log reader is not left wondering whether the sweep
// ran differently.
inline void NoteParallelEnv() {
  static bool noted = false;
  if (noted) return;
  noted = true;
  const char* env = std::getenv("HM_PARALLEL");
  if (EnvFlag("HM_PARALLEL")) {
    std::cout << "[faultcheck] HM_PARALLEL=" << env
              << " ignored: schedule exploration/replay is single-threaded by design"
                 " (DESIGN.md §10.4)\n";
  }
}

// Applies smoke bounds unless the full sweep is requested. The defaults keep each suite in
// tier-1 time budget; pass larger strides for heavyweight workloads.
inline ExplorerOptions Bounded(ExplorerOptions options, int first_stride = 2,
                               int second_stride = 3, int second_limit = 5) {
  if (!FullSweep()) {
    options.first_stride = first_stride;
    options.second_stride = second_stride;
    options.second_limit = second_limit;
  }
  return options;
}

// Prints the per-family explored-schedule counts (surfaced in CI logs / check.sh) and every
// failing schedule in replayable printed form.
inline void PrintReport(const std::string& label, const ExplorerReport& report) {
  NoteParallelEnv();
  std::cout << "[faultcheck] " << label << ": " << report.Summary() << "\n";
  for (const FailingSchedule& failure : report.failures) {
    std::cout << "[faultcheck]   FAIL " << failure.schedule.ToString() << " -> "
              << failure.reason << "\n[faultcheck]        minimized: "
              << failure.minimized.ToString() << "\n";
  }
}

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_TESTS_FAULTCHECK_SWEEP_MODE_H_
