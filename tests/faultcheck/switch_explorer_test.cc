// Switch-overlapping schedule sweeps (§4.7, §5.2): crashes landing before, at, and after a
// protocol switch begins — including mid-switch executions running the transitional
// protocol — must all pass the consistency oracle, in both switch directions.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FaultPoint;
using faultcheck::Schedule;
using faultcheck::Workload;

ExplorerOptions SwitchingOptions(ProtocolKind from, ProtocolKind to) {
  ExplorerOptions options;
  options.protocol = from;
  options.enable_switching = true;
  options.crash_plus_switch = true;
  options.switch_target = to;
  return options;
}

void ExpectSwitchSweepPasses(const Workload& workload, ExplorerOptions options) {
  Explorer explorer(workload, options);
  ExplorerReport report = explorer.Run();
  faultcheck::PrintReport(workload.name + "/" + core::ProtocolName(options.protocol) + "->" +
                              core::ProtocolName(options.switch_target),
                          report);
  EXPECT_GT(report.baseline_sites, 0);
  EXPECT_GT(report.explored_switch, 0);
  if (!report.AllPassed()) {
    FAIL() << report.failures.size() << " failing schedules, first: "
           << report.failures[0].schedule.ToString() << " -> " << report.failures[0].reason;
  }
}

TEST(SwitchExplorerTest, CounterSurvivesWriteToReadSwitchSchedules) {
  ExpectSwitchSweepPasses(
      faultcheck::CounterWorkload(),
      Bounded(SwitchingOptions(ProtocolKind::kHalfmoonWrite, ProtocolKind::kHalfmoonRead), 3, 5,
              3));
}

TEST(SwitchExplorerTest, CounterSurvivesReadToWriteSwitchSchedules) {
  ExpectSwitchSweepPasses(
      faultcheck::CounterWorkload(),
      Bounded(SwitchingOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite), 3, 5,
              3));
}

TEST(SwitchExplorerTest, TransferSurvivesWriteToReadSwitchSchedules) {
  ExpectSwitchSweepPasses(
      faultcheck::TransferWorkload(),
      Bounded(SwitchingOptions(ProtocolKind::kHalfmoonWrite, ProtocolKind::kHalfmoonRead), 4, 6,
              2));
}

TEST(SwitchExplorerTest, CounterSurvivesWriteToReadSwitchSchedulesWithTwoShards) {
  // Protocol switches over a tag-partitioned log: the transition record and the in-window
  // invocations land on different shards, so the switch fence must hold under the
  // cross-shard merge order too.
  ExplorerOptions options =
      SwitchingOptions(ProtocolKind::kHalfmoonWrite, ProtocolKind::kHalfmoonRead);
  options.log_shards = 2;
  ExpectSwitchSweepPasses(faultcheck::CounterWorkload(), Bounded(options, 3, 5, 3));
}

TEST(SwitchExplorerTest, CounterSurvivesReadToWriteSwitchSchedulesWithTwoShards) {
  ExplorerOptions options =
      SwitchingOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite);
  options.log_shards = 2;
  ExpectSwitchSweepPasses(faultcheck::CounterWorkload(), Bounded(options, 3, 5, 3));
}

TEST(SwitchExplorerTest, MidSwitchCrashScheduleReplaysDeterministically) {
  // A switch starting at the very first hit puts the invocations inside the switch window
  // (transitional protocol); a crash in that window must recover, and the printed schedule
  // must replay to the identical execution.
  Explorer explorer(faultcheck::CounterWorkload(),
                    SwitchingOptions(ProtocolKind::kHalfmoonWrite, ProtocolKind::kHalfmoonRead));

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_GT(baseline.trace.size(), 3u);

  Schedule schedule;
  schedule.points.push_back(FaultPoint::SwitchBegin(ProtocolKind::kHalfmoonRead, 0));
  schedule.points.push_back(
      FaultPoint::Crash(baseline.trace[3].site, baseline.trace[3].occurrence));

  auto reparsed = Schedule::Parse(schedule.ToString());
  ASSERT_TRUE(reparsed.has_value()) << schedule.ToString();
  ASSERT_EQ(*reparsed, schedule);

  Explorer::RunOutcome first = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome second = explorer.RunSchedule(*reparsed, /*record_trace=*/true);
  EXPECT_TRUE(first.verdict.ok) << first.verdict.failure;
  EXPECT_EQ(first.verdict.ok, second.verdict.ok);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_GE(first.crashes, 1);
}

}  // namespace
}  // namespace halfmoon
