// FailureInjector named-site registry tests, plus the crash-site audit: every site a workload
// execution passes through must be registered in faultcheck/sites.h (the reproducibility
// contract for printed schedules).

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/faultcheck/explorer.h"
#include "src/faultcheck/sites.h"
#include "src/faultcheck/workload.h"
#include "src/runtime/failure_injector.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::Schedule;
using runtime::FailureInjector;

TEST(FailureInjectorTest, NamedSiteCrashFiresAtExactOccurrence) {
  FailureInjector injector;
  Rng rng(1);
  injector.CrashAtSite("a.site", 2);
  // Occurrences of "a.site": 0, 1, 2 — only the third fires, other sites never do.
  EXPECT_FALSE(injector.ShouldCrash(rng, "a.site"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "b.site"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "a.site"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "b.site"));
  EXPECT_TRUE(injector.ShouldCrash(rng, "a.site"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "a.site"));
}

TEST(FailureInjectorTest, SiteOccurrencesAreStableAcrossOtherSites) {
  // The same (site, occurrence) pair fires at the same logical point no matter how many
  // *other* sites interleave — the property that makes printed schedules survive code motion.
  for (int noise = 0; noise < 3; ++noise) {
    FailureInjector injector;
    Rng rng(1);
    injector.CrashAtSite("target", 1);
    bool crashed = false;
    for (int round = 0; round < 3 && !crashed; ++round) {
      for (int n = 0; n < noise; ++n) {
        EXPECT_FALSE(injector.ShouldCrash(rng, "noise." + std::to_string(n)));
      }
      crashed = injector.ShouldCrash(rng, "target");
      if (crashed) {
        EXPECT_EQ(round, 1) << "noise=" << noise;
      }
    }
    EXPECT_TRUE(crashed) << "noise=" << noise;
  }
}

TEST(FailureInjectorTest, PerSiteCountsTrackWhileSchedulingOrTracing) {
  FailureInjector injector;
  Rng rng(1);
  injector.EnableTrace(true);
  injector.ShouldCrash(rng, "x");
  injector.ShouldCrash(rng, "y");
  injector.ShouldCrash(rng, "x");
  EXPECT_EQ(injector.SiteHitCount("x"), 2);
  EXPECT_EQ(injector.SiteHitCount("y"), 1);
  EXPECT_EQ(injector.SiteHitCount("z"), 0);
  EXPECT_EQ(injector.site_hits(), 3);

  ASSERT_EQ(injector.trace().size(), 3u);
  EXPECT_EQ(injector.trace()[0], (FailureInjector::TraceEntry{"x", 0}));
  EXPECT_EQ(injector.trace()[1], (FailureInjector::TraceEntry{"y", 0}));
  EXPECT_EQ(injector.trace()[2], (FailureInjector::TraceEntry{"x", 1}));

  injector.ResetHitCounter();
  EXPECT_EQ(injector.site_hits(), 0);
  EXPECT_EQ(injector.SiteHitCount("x"), 0);
  EXPECT_TRUE(injector.trace().empty());
}

TEST(FailureInjectorTest, GlobalIndexModeStillWorks) {
  FailureInjector injector;
  Rng rng(1);
  injector.CrashAtSiteHits({1});
  EXPECT_FALSE(injector.ShouldCrash(rng, "s"));
  EXPECT_TRUE(injector.ShouldCrash(rng, "s"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "s"));
}

TEST(FailureInjectorTest, HitActionsRunOnceAtTheirHit) {
  FailureInjector injector;
  Rng rng(1);
  int fired_at = -1;
  injector.RunAtHit(2, [&] { fired_at = static_cast<int>(injector.site_hits()); });
  for (int i = 0; i < 5; ++i) injector.ShouldCrash(rng, "s");
  // The action runs inside the hit-2 call, after the counter advanced past it.
  EXPECT_EQ(fired_at, 3);
}

TEST(FailureInjectorTest, ScheduledPeerFiresOnceAfterHit) {
  FailureInjector injector;
  Rng rng(1);
  injector.SpawnPeerAfterHit(1);
  EXPECT_FALSE(injector.ShouldDuplicate(rng));  // Counter still at 0.
  injector.ShouldCrash(rng, "s");
  injector.ShouldCrash(rng, "s");
  EXPECT_TRUE(injector.ShouldDuplicate(rng));   // Counter (2) passed the armed hit.
  EXPECT_FALSE(injector.ShouldDuplicate(rng));  // Exactly once.

  injector.SpawnPeerAfterHit(-1);
  EXPECT_TRUE(injector.ShouldDuplicate(rng));  // -1 = next opportunity.
  EXPECT_FALSE(injector.ShouldDuplicate(rng));
}

TEST(FailureInjectorTest, ClearCrashScheduleDropsBothModes) {
  FailureInjector injector;
  Rng rng(1);
  injector.CrashAtSiteHits({0});
  injector.CrashAtSite("s", 0);
  injector.ClearCrashSchedule();
  EXPECT_FALSE(injector.ShouldCrash(rng, "s"));
}

// ---- Crash-site audit ----

TEST(CrashSiteAuditTest, EveryTracedSiteIsRegistered) {
  // Trace every workload under every protocol (switching on and off) and check each reached
  // site against the registry. Catches renamed call sites and forgotten registrations.
  std::set<std::string> seen;
  for (const faultcheck::Workload& workload : faultcheck::AllWorkloads()) {
    for (ProtocolKind protocol :
         {ProtocolKind::kUnsafe, ProtocolKind::kBoki, ProtocolKind::kHalfmoonRead,
          ProtocolKind::kHalfmoonWrite, ProtocolKind::kTransitional}) {
      for (bool switching : {false, true}) {
        ExplorerOptions options;
        options.protocol = protocol;
        options.enable_switching = switching;
        Explorer explorer(workload, options);
        Explorer::RunOutcome outcome = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
        for (const runtime::FailureInjector::TraceEntry& entry : outcome.trace) {
          EXPECT_TRUE(faultcheck::IsKnownCrashSite(entry.site))
              << "unregistered crash site \"" << entry.site << "\" (workload "
              << workload.name << ", " << core::ProtocolName(protocol) << ")";
          seen.insert(entry.site);
        }
      }
    }
  }
  // Sanity: the sweep actually exercises a healthy fraction of the registry.
  EXPECT_GE(seen.size(), 20u);
}

}  // namespace
}  // namespace halfmoon
