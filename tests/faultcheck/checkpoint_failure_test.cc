// Checkpoint-round failure sweeps over the durable cluster (DESIGN.md §14): start a
// checkpoint round at traced hit positions and stress every way it can die — the daemon
// crashing inside the round (ckpt.write / ckpt.install / ckpt.truncate) and whole-node
// kills landing mid-round or right after it — then require every remaining invocation plus
// the consistency oracle to behave exactly as a fault-free run. Recovery comes up from a
// partial image, an untruncated manifest, or the freshly compacted journal; none of those
// may lose or duplicate acknowledged state. Smoke-bounded for tier-1; HM_FAULTCHECK_FULL=1
// sweeps every traced position.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FaultPoint;
using faultcheck::PrintReport;
using faultcheck::Schedule;
using faultcheck::Workload;

const ProtocolKind kFaultTolerant[] = {
    ProtocolKind::kBoki,
    ProtocolKind::kHalfmoonRead,
    ProtocolKind::kHalfmoonWrite,
    ProtocolKind::kTransitional,
};

// The checkpoint family rides on the depth-1 sweep; depth-2 crash families are covered by
// explorer_test.cc and the node-kill compositions are part of the family itself (the
// explorer pairs every round trigger with kills at hit+1 and hit+2 per domain).
ExplorerOptions CheckpointSweepOptions(ProtocolKind protocol) {
  ExplorerOptions options;
  options.protocol = protocol;
  options.durable = 1;
  options.checkpoints = true;
  options.kill_domains = {"store", "seq"};
  options.crash_pairs = false;
  options.crash_plus_peer = false;
  options.crash_plus_gc = false;
  return options;
}

void ExpectCheckpointSweepPasses(const Workload& workload, ExplorerOptions options) {
  Explorer explorer(workload, options);
  ExplorerReport report = explorer.Run();
  PrintReport(workload.name + "/" + core::ProtocolName(options.protocol) + "/ckpt", report);
  EXPECT_GT(report.baseline_sites, 0);
  EXPECT_GT(report.explored_ckpt, 0);
  if (!report.AllPassed()) {
    FAIL() << report.failures.size() << " failing schedules, first: "
           << report.failures[0].schedule.ToString() << " -> " << report.failures[0].reason;
  }
}

class CheckpointSweepTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, CheckpointSweepTest, ::testing::ValuesIn(kFaultTolerant),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(CheckpointSweepTest, CounterSurvivesCheckpointFaults) {
  ExpectCheckpointSweepPasses(faultcheck::CounterWorkload(),
                              Bounded(CheckpointSweepOptions(GetParam()), 3, 4, 4));
}

TEST_P(CheckpointSweepTest, TransferSurvivesCheckpointFaults) {
  ExpectCheckpointSweepPasses(faultcheck::TransferWorkload(),
                              Bounded(CheckpointSweepOptions(GetParam()), 4, 4, 4));
}

TEST_P(CheckpointSweepTest, WorkflowSurvivesCheckpointFaults) {
  // Nested Invoke/InvokeAll: a round can cut between a child's ack and the parent's
  // post-invoke log step, and a composed kill then restarts from image + replay-suffix with
  // the parent still mid-flight.
  ExpectCheckpointSweepPasses(faultcheck::WorkflowWorkload(),
                              Bounded(CheckpointSweepOptions(GetParam()), 8, 8, 3));
}

TEST(CheckpointDeterminismTest, PrintedCheckpointScheduleReplaysIdentically) {
  ExplorerOptions options = CheckpointSweepOptions(ProtocolKind::kHalfmoonRead);
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Explorer::RunOutcome baseline = explorer.RunSchedule(Schedule{}, /*record_trace=*/true);
  ASSERT_GT(baseline.trace.size(), 4u);

  Schedule schedule;
  schedule.points.push_back(FaultPoint::Checkpoint(3));
  std::string printed = schedule.ToString();
  EXPECT_EQ(printed, "ckpt@3");
  auto reparsed = Schedule::Parse(printed);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, schedule);

  Explorer::RunOutcome direct = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome replayed = explorer.RunSchedule(*reparsed, /*record_trace=*/true);
  EXPECT_TRUE(direct.verdict.ok) << direct.verdict.failure;
  EXPECT_EQ(direct.verdict.ok, replayed.verdict.ok);
  EXPECT_EQ(direct.trace, replayed.trace);
}

TEST(CheckpointDeterminismTest, RoundPlusDaemonCrashComposes) {
  // The daemon dies after stamping the manifest but before truncating the journal: the
  // superseded journal prefix and the fresh manifest coexist, and whatever recovery path a
  // later kill picks must agree with the acknowledged history.
  ExplorerOptions options = CheckpointSweepOptions(ProtocolKind::kHalfmoonWrite);
  Explorer explorer(faultcheck::CounterWorkload(), options);

  Schedule schedule;
  schedule.points.push_back(FaultPoint::Checkpoint(2));
  schedule.points.push_back(FaultPoint::Crash("ckpt.install", 0));
  schedule.points.push_back(FaultPoint::NodeKill("store", 6));
  Explorer::RunOutcome outcome = explorer.RunSchedule(schedule);
  EXPECT_TRUE(outcome.verdict.ok) << outcome.verdict.failure;
}

TEST(CheckpointScheduleCodecTest, RoundTripsAndRejectsMalformedPoints) {
  Schedule schedule;
  schedule.points.push_back(FaultPoint::Checkpoint(7));
  schedule.points.push_back(FaultPoint::Crash("ckpt.write", 0));
  std::string printed = schedule.ToString();
  EXPECT_EQ(printed, "ckpt@7 crash(ckpt.write#0)");
  auto parsed = Schedule::Parse(printed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);

  EXPECT_FALSE(Schedule::Parse("ckpt@x").has_value());
  EXPECT_FALSE(Schedule::Parse("ckpt7").has_value());
  EXPECT_FALSE(Schedule::Parse("ckpt@").has_value());
}

TEST(CheckpointGuardDeathTest, CheckpointPointsRequireTheCheckpointTier) {
  // A round trigger against a cluster without the checkpoint tier has no service to drive —
  // arming one must abort loudly instead of silently exploring nothing.
  ExplorerOptions options = CheckpointSweepOptions(ProtocolKind::kHalfmoonRead);
  options.durable = 0;
  Explorer explorer(faultcheck::CounterWorkload(), options);
  Schedule schedule;
  schedule.points.push_back(FaultPoint::Checkpoint(0));
  EXPECT_DEATH(explorer.RunSchedule(schedule), "checkpoint tier");
}

}  // namespace
}  // namespace halfmoon
