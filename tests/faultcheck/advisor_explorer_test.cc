// Advisor-mode schedule sweeps (DESIGN.md §11): crashes overlapping per-object protocol
// switches fired by the online advisor. The depth-2 crash_plus_advisor family pairs every
// first crash with an advisor firing (switching every workload key) at positions across the
// faulted run — including firings whose SwitchObject dies mid-transition, leaving objects
// transitional until a later sweep. Every explored schedule must pass the consistency
// oracle, in both switch directions and over a sharded log.

#include <string>

#include <gtest/gtest.h>

#include "src/faultcheck/explorer.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "tests/faultcheck/sweep_mode.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;
using faultcheck::Bounded;
using faultcheck::Explorer;
using faultcheck::ExplorerOptions;
using faultcheck::ExplorerReport;
using faultcheck::FaultPoint;
using faultcheck::Schedule;
using faultcheck::Workload;

ExplorerOptions AdvisorOptions(ProtocolKind from, ProtocolKind to) {
  ExplorerOptions options;
  options.protocol = from;
  options.advisor_mode = true;
  options.crash_plus_advisor = true;
  options.switch_target = to;
  return options;
}

void ExpectAdvisorSweepPasses(const Workload& workload, ExplorerOptions options) {
  Explorer explorer(workload, options);
  ExplorerReport report = explorer.Run();
  faultcheck::PrintReport(workload.name + "/advisor/" +
                              core::ProtocolName(options.protocol) + "->" +
                              core::ProtocolName(options.switch_target),
                          report);
  EXPECT_GT(report.baseline_sites, 0);
  EXPECT_GT(report.explored_advisor, 0);
  if (!report.AllPassed()) {
    FAIL() << report.failures.size() << " failing schedules, first: "
           << report.failures[0].schedule.ToString() << " -> " << report.failures[0].reason;
  }
}

// The HM_FAULTCHECK_FULL=1 sweep runs this counter family exhaustively (no strides, no
// second-position cap) — the ISSUE's "at least one workload swept exhaustively" gate.
TEST(AdvisorExplorerTest, CounterSurvivesCrashDuringAdvisorReadToWriteSwitch) {
  ExpectAdvisorSweepPasses(
      faultcheck::CounterWorkload(),
      Bounded(AdvisorOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite), 3, 5,
              3));
}

TEST(AdvisorExplorerTest, CounterSurvivesCrashDuringAdvisorWriteToReadSwitch) {
  ExpectAdvisorSweepPasses(
      faultcheck::CounterWorkload(),
      Bounded(AdvisorOptions(ProtocolKind::kHalfmoonWrite, ProtocolKind::kHalfmoonRead), 3, 5,
              3));
}

TEST(AdvisorExplorerTest, TransferSurvivesCrashDuringAdvisorSwitchSchedules) {
  // Multi-object workload: the advisor firing switches BOTH accounts, so a crash can land
  // with one object switched and the other still mid-transition.
  ExpectAdvisorSweepPasses(
      faultcheck::TransferWorkload(),
      Bounded(AdvisorOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite), 4, 6,
              2));
}

TEST(AdvisorExplorerTest, CounterSurvivesAdvisorSwitchSchedulesWithTwoShards) {
  // Per-object transition streams over a tag-partitioned log: an object's "switch:k:<key>"
  // records and its write-log records can land on different shards.
  ExplorerOptions options =
      AdvisorOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite);
  options.log_shards = 2;
  ExpectAdvisorSweepPasses(faultcheck::CounterWorkload(), Bounded(options, 3, 5, 3));
}

TEST(AdvisorExplorerTest, MidSwitchAdvisorCrashScheduleReplaysDeterministically) {
  // A hand-built schedule crashing the advisor daemon between BEGIN and END must parse back
  // from its printed form and replay to the identical execution — the property that makes
  // sweep failures debuggable.
  Explorer explorer(faultcheck::CounterWorkload(),
                    AdvisorOptions(ProtocolKind::kHalfmoonRead, ProtocolKind::kHalfmoonWrite));

  Schedule schedule;
  schedule.points.push_back(FaultPoint::AdvisorFire(ProtocolKind::kHalfmoonWrite, 0));
  schedule.points.push_back(FaultPoint::Crash("advisor.mid_switch", 0));

  auto reparsed = Schedule::Parse(schedule.ToString());
  ASSERT_TRUE(reparsed.has_value()) << schedule.ToString();
  ASSERT_EQ(*reparsed, schedule);

  Explorer::RunOutcome first = explorer.RunSchedule(schedule, /*record_trace=*/true);
  Explorer::RunOutcome second = explorer.RunSchedule(*reparsed, /*record_trace=*/true);
  EXPECT_TRUE(first.verdict.ok) << first.verdict.failure;
  EXPECT_EQ(first.verdict.ok, second.verdict.ok);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.crashes, second.crashes);
}

}  // namespace
}  // namespace halfmoon
