// Application workloads: functional correctness of every root flow under every protocol, and
// exactly-once behaviour of the workflows under crash storms.

#include <gtest/gtest.h>

#include "src/workloads/applications.h"
#include "src/workloads/args.h"
#include "tests/testing/test_world.h"

namespace halfmoon::workloads {
namespace {

using core::ProtocolKind;
using testing::TestWorld;
using testing::TestWorldOptions;

class AppProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, AppProtocolTest,
                         ::testing::Values(ProtocolKind::kUnsafe, ProtocolKind::kBoki,
                                           ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

AppDataset SmallData() {
  AppDataset data;
  data.hotels = 20;
  data.users = 20;
  data.movies = 20;
  data.tweets = 20;
  return data;
}

TestWorldOptions Opts(ProtocolKind kind) {
  TestWorldOptions options;
  options.protocol = kind;
  return options;
}

TEST_P(AppProtocolTest, TravelSearchReturnsHotels) {
  TestWorld world(Opts(GetParam()));
  RegisterTravelApp(world.runtime(), SmallData());
  Args args;
  args.SetInt("hotel", 2);
  args.Set("user", "u0001");
  Value hotels = world.Call("travel.search_hotels", args.Encode());
  EXPECT_NE(hotels.find("h0002"), std::string::npos);
}

TEST_P(AppProtocolTest, TravelReserveDecrementsAvailability) {
  TestWorld world(Opts(GetParam()));
  RegisterTravelApp(world.runtime(), SmallData());
  Args args;
  args.SetInt("hotel", 3);
  args.Set("user", "u0004");
  EXPECT_EQ(world.Call("travel.reserve", args.Encode()), "ok");
  world.Register("read_avail", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("avail:h0003");
  });
  EXPECT_EQ(DecodeInt64(world.Call("read_avail")), 99);
}

TEST_P(AppProtocolTest, MovieComposeThenRead) {
  TestWorld world(Opts(GetParam()));
  RegisterMovieApp(world.runtime(), SmallData());
  Args args;
  args.Set("movie", "m0005");
  args.Set("user", "u0006");
  args.Set("rid", "r1234");
  args.SetInt("rating", 9);
  Value rid = world.Call("movie.compose_review", args.Encode());
  EXPECT_EQ(rid, "r1234");
  Value reviews = world.Call("movie.get_reviews", args.Encode());
  EXPECT_NE(reviews.find("r1234"), std::string::npos);
}

TEST_P(AppProtocolTest, RetwisPostAppearsInTimeline) {
  TestWorld world(Opts(GetParam()));
  RegisterRetwisApp(world.runtime(), SmallData());
  Args args;
  args.Set("user", "u0007");
  args.Set("target", "u0001");
  args.Set("tweet", "t9001");
  args.SetInt("seed", 3);
  world.Call("retwis.post", args.Encode());
  Value timeline = world.Call("retwis.get_timeline", args.Encode());
  EXPECT_NE(timeline.find("t9001"), std::string::npos);
}

TEST_P(AppProtocolTest, RetwisFollowUpdatesFollowers) {
  TestWorld world(Opts(GetParam()));
  RegisterRetwisApp(world.runtime(), SmallData());
  Args args;
  args.Set("user", "u0002");
  args.Set("target", "u0009");
  args.Set("tweet", "t9002");
  args.SetInt("seed", 0);
  world.Call("retwis.follow", args.Encode());
  world.Register("read_followers", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_return co_await ctx.Read("followers:u0009");
  });
  EXPECT_EQ(world.Call("read_followers"), "u0002");
}

// Exactly-once for the movie compose workflow (8 sub-invocations, half in parallel) under an
// exhaustive crash sweep — the heaviest end-to-end property test in the suite.
class AppCrashSweepTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(FaultTolerant, AppCrashSweepTest,
                         ::testing::Values(ProtocolKind::kBoki, ProtocolKind::kHalfmoonRead,
                                           ProtocolKind::kHalfmoonWrite),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           std::string name = core::ProtocolName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AppCrashSweepTest, MovieComposeIsExactlyOnceUnderCrashSweep) {
  Args args;
  args.Set("movie", "m0001");
  args.Set("user", "u0001");
  args.Set("rid", "r0042");
  args.SetInt("rating", 7);
  const Value input = args.Encode();

  auto final_user_reviews = [&](int64_t crash_site) -> std::pair<int64_t, Value> {
    TestWorld world(Opts(GetParam()));
    RegisterMovieApp(world.runtime(), SmallData());
    if (crash_site >= 0) {
      world.cluster().failure_injector().CrashAtSiteHits({crash_site});
    }
    world.Call("movie.compose_review", input);
    int64_t sites = world.cluster().failure_injector().site_hits();
    world.cluster().failure_injector().CrashAtSiteHits({});
    world.Register("read_lists", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value user = co_await ctx.Read("user-reviews:u0001");
      Value movie = co_await ctx.Read("movie-reviews:m0001");
      co_return user + "|" + movie;
    });
    return {sites, world.Call("read_lists")};
  };

  auto [sites, clean] = final_user_reviews(-1);
  ASSERT_EQ(clean, "r0042|r0042");  // Appended exactly once to both lists.
  ASSERT_GT(sites, 0);
  // Sweep every third site to keep runtime modest; the dedicated exactly-once suite already
  // covers dense sweeps on smaller workloads.
  for (int64_t k = 0; k < sites; k += 3) {
    auto [_, state] = final_user_reviews(k);
    EXPECT_EQ(state, "r0042|r0042") << "crash at site " << k;
  }
}

TEST_P(AppCrashSweepTest, TravelReservationNeverDoubleBooks) {
  Args args;
  args.SetInt("hotel", 1);
  args.Set("user", "u0002");
  const Value input = args.Encode();

  auto run = [&](int64_t crash_site) -> std::pair<int64_t, int64_t> {
    TestWorld world(Opts(GetParam()));
    RegisterTravelApp(world.runtime(), SmallData());
    if (crash_site >= 0) {
      world.cluster().failure_injector().CrashAtSiteHits({crash_site});
    }
    world.Call("travel.reserve", input);
    int64_t sites = world.cluster().failure_injector().site_hits();
    world.cluster().failure_injector().CrashAtSiteHits({});
    world.Register("read_avail", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_return co_await ctx.Read("avail:h0001");
    });
    return {sites, DecodeInt64(world.Call("read_avail"))};
  };

  auto [sites, clean] = run(-1);
  ASSERT_EQ(clean, 99);
  for (int64_t k = 0; k < sites; k += 3) {
    auto [_, rooms] = run(k);
    EXPECT_EQ(rooms, 99) << "crash at site " << k << " double-booked or lost the booking";
  }
}

}  // namespace
}  // namespace halfmoon::workloads
