#include "src/workloads/args.h"

#include <gtest/gtest.h>

namespace halfmoon::workloads {
namespace {

TEST(ArgsTest, EncodeDecodeRoundTrip) {
  Args args;
  args.Set("user", "u0001");
  args.SetInt("hotel", 42);
  Args parsed = Args::Parse(args.Encode());
  EXPECT_EQ(parsed.Get("user"), "u0001");
  EXPECT_EQ(parsed.GetInt("hotel"), 42);
}

TEST(ArgsTest, EmptyEncodesToEmpty) {
  Args args;
  EXPECT_EQ(args.Encode(), "");
  Args parsed = Args::Parse("");
  EXPECT_FALSE(parsed.Has("anything"));
}

TEST(ArgsTest, EncodeIsDeterministicOrder) {
  Args a;
  a.Set("b", "2");
  a.Set("a", "1");
  EXPECT_EQ(a.Encode(), "a=1&b=2");
}

TEST(ArgsTest, HasDistinguishesPresence) {
  Args args = Args::Parse("x=1");
  EXPECT_TRUE(args.Has("x"));
  EXPECT_FALSE(args.Has("y"));
}

TEST(ArgsTest, OverwriteKeepsLastValue) {
  Args args;
  args.Set("k", "old");
  args.Set("k", "new");
  EXPECT_EQ(args.Get("k"), "new");
}

TEST(ArgsTest, EmptyValueRoundTrips) {
  Args args;
  args.Set("k", "");
  Args parsed = Args::Parse(args.Encode());
  EXPECT_TRUE(parsed.Has("k"));
  EXPECT_EQ(parsed.Get("k"), "");
}

TEST(ArgsDeathTest, MalformedInputAborts) {
  EXPECT_DEATH(Args::Parse("novalue"), "malformed");
}

}  // namespace
}  // namespace halfmoon::workloads
