#include "src/workloads/synthetic.h"

#include <gtest/gtest.h>

#include "src/workloads/loadgen.h"
#include "tests/testing/test_world.h"

namespace halfmoon::workloads {
namespace {

using testing::TestWorld;
using testing::TestWorldOptions;

TEST(SyntheticTest, KeysAreFixedWidth) {
  TestWorld world;
  SyntheticConfig config;
  SyntheticWorkload synthetic(&world.runtime(), config);
  EXPECT_EQ(synthetic.KeyFor(0).size(), 8u);
  EXPECT_EQ(synthetic.KeyFor(9999).size(), 8u);
  EXPECT_NE(synthetic.KeyFor(1), synthetic.KeyFor(2));
}

TEST(SyntheticTest, SetupPopulatesObjects) {
  TestWorld world;
  SyntheticConfig config;
  config.num_objects = 50;
  SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();
  EXPECT_GE(world.cluster().kv_state().key_count() +
                world.cluster().kv_state().VersionCount(world.ObjectIdFor(synthetic.KeyFor(0))) * 50,
            50u);
}

TEST(SyntheticTest, NextInputRespectsOpCount) {
  TestWorld world;
  SyntheticConfig config;
  config.ops_per_request = 7;
  SyntheticWorkload synthetic(&world.runtime(), config);
  Value input = synthetic.NextInput();
  size_t ops = 1;
  for (char c : input) {
    if (c == ';') ++ops;
  }
  EXPECT_EQ(ops, 7u);
}

TEST(SyntheticTest, ReadRatioZeroGeneratesOnlyWrites) {
  TestWorld world;
  SyntheticConfig config;
  config.read_ratio = 0.0;
  SyntheticWorkload synthetic(&world.runtime(), config);
  Value input = synthetic.NextInput();
  EXPECT_EQ(input.find('R'), std::string::npos);
}

TEST(SyntheticTest, ReadRatioOneGeneratesOnlyReads) {
  TestWorld world;
  SyntheticConfig config;
  config.read_ratio = 1.0;
  SyntheticWorkload synthetic(&world.runtime(), config);
  Value input = synthetic.NextInput();
  EXPECT_EQ(input.find('W'), std::string::npos);
}

TEST(SyntheticTest, BodyExecutesOpsAndRecordsLatency) {
  TestWorld world;
  SyntheticConfig config;
  config.num_objects = 20;
  SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();
  world.Call(SyntheticWorkload::FunctionName(),
             "R:" + synthetic.KeyFor(3) + ";W:" + synthetic.KeyFor(5));
  EXPECT_EQ(synthetic.read_latency().count(), 1u);
  EXPECT_EQ(synthetic.write_latency().count(), 1u);
  EXPECT_GT(synthetic.read_latency().MedianMs(), 0.5);
}

TEST(LoadGeneratorTest, OffersApproximatelyTheConfiguredRate) {
  TestWorld world;
  world.Register("noop", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Compute();
    co_return "";
  });
  LoadGenConfig load;
  load.requests_per_second = 200;
  load.warmup = Seconds(1);
  load.duration = Seconds(5);
  LoadGenerator generator(&world.runtime(), load,
                          []() { return std::make_pair(std::string("noop"), Value{}); });
  generator.RunToCompletion();
  EXPECT_NEAR(generator.MeasuredThroughput(), 200.0, 30.0);
  EXPECT_EQ(generator.offered(), generator.completed());
}

TEST(LoadGeneratorTest, WarmupSamplesExcluded) {
  TestWorld world;
  world.Register("noop", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Compute();
    co_return "";
  });
  LoadGenConfig load;
  load.requests_per_second = 100;
  load.warmup = Seconds(2);
  load.duration = Seconds(2);
  LoadGenerator generator(&world.runtime(), load,
                          []() { return std::make_pair(std::string("noop"), Value{}); });
  generator.RunToCompletion();
  // Roughly half the offered requests fall in the warm-up and are not measured.
  EXPECT_LT(generator.latency().count(), static_cast<size_t>(generator.completed()));
}

TEST(LoadGeneratorTest, SampleCallbackSeesEveryMeasuredCompletion) {
  TestWorld world;
  world.Register("noop", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Compute();
    co_return "";
  });
  LoadGenConfig load;
  load.requests_per_second = 100;
  load.warmup = Seconds(1);
  load.duration = Seconds(2);
  LoadGenerator generator(&world.runtime(), load,
                          []() { return std::make_pair(std::string("noop"), Value{}); });
  int callbacks = 0;
  SimTime last_time = 0;
  generator.SetSampleCallback([&](SimTime when, SimDuration latency) {
    ++callbacks;
    EXPECT_GE(when, last_time);
    EXPECT_GT(latency, 0);
    last_time = when;
  });
  generator.RunToCompletion();
  EXPECT_EQ(callbacks, static_cast<int>(generator.latency().count()));
}

}  // namespace
}  // namespace halfmoon::workloads
