#include "src/common/latency_model.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace halfmoon {
namespace {

// Draws `n` samples and returns the requested percentile in milliseconds.
double SamplePercentile(const LognormalLatency& model, Rng& rng, int n, double pct) {
  std::vector<double> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(ToMillisDouble(model.Sample(rng)));
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(pct / 100.0 * (n - 1));
  return samples[idx];
}

TEST(LognormalLatencyTest, ReportsItsOwnQuantiles) {
  LognormalLatency model(1.18, 1.91);
  EXPECT_NEAR(model.median_ms(), 1.18, 1e-9);
  EXPECT_NEAR(model.p99_ms(), 1.91, 1e-9);
}

TEST(LognormalLatencyTest, EmpiricalMedianMatchesTable1Log) {
  LognormalLatency model(1.18, 1.91);
  Rng rng(99);
  EXPECT_NEAR(SamplePercentile(model, rng, 50000, 50.0), 1.18, 0.05);
}

TEST(LognormalLatencyTest, EmpiricalP99MatchesTable1Log) {
  LognormalLatency model(1.18, 1.91);
  Rng rng(99);
  EXPECT_NEAR(SamplePercentile(model, rng, 50000, 99.0), 1.91, 0.10);
}

TEST(LognormalLatencyTest, EmpiricalQuantilesMatchTable1DbRead) {
  LognormalLatency model(1.88, 4.60);
  Rng rng(7);
  EXPECT_NEAR(SamplePercentile(model, rng, 50000, 50.0), 1.88, 0.08);
  EXPECT_NEAR(SamplePercentile(model, rng, 50000, 99.0), 4.60, 0.35);
}

TEST(LognormalLatencyTest, SamplesAreAlwaysPositive) {
  LognormalLatency model(0.12, 0.72);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(model.Sample(rng), 0);
  }
}

TEST(LognormalLatencyTest, DegenerateDistributionIsConstant) {
  LognormalLatency model(2.0, 2.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(ToMillisDouble(model.Sample(rng)), 2.0, 1e-9);
  }
}

TEST(LatencyCalibrationTest, DefaultsMatchPaperTable1) {
  LatencyCalibration cal;
  EXPECT_DOUBLE_EQ(cal.log_append_median, 1.18);
  EXPECT_DOUBLE_EQ(cal.log_append_p99, 1.91);
  EXPECT_DOUBLE_EQ(cal.db_read_median, 1.88);
  EXPECT_DOUBLE_EQ(cal.db_read_p99, 4.60);
  EXPECT_DOUBLE_EQ(cal.db_cond_write_median, 2.47);
  EXPECT_DOUBLE_EQ(cal.db_cond_write_p99, 5.86);
  // The raw (unconditional) write must be cheaper than the conditional one (§6.1).
  EXPECT_LT(cal.db_plain_write_median, cal.db_cond_write_median);
  // The cached logReadPrev path must be far cheaper than a DB read (§4.1).
  EXPECT_LT(cal.log_read_cached_median * 5, cal.db_read_median);
}

TEST(SimTimeTest, UnitHelpers) {
  EXPECT_EQ(Microseconds(3), 3000);
  EXPECT_EQ(Milliseconds(2), 2000000);
  EXPECT_EQ(Seconds(1), 1000000000);
  EXPECT_EQ(FromMillisDouble(1.5), 1500000);
  EXPECT_DOUBLE_EQ(ToMillisDouble(Milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToSecondsDouble(Seconds(3)), 3.0);
}

}  // namespace
}  // namespace halfmoon
