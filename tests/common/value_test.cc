#include "src/common/value.h"

#include <gtest/gtest.h>

namespace halfmoon {
namespace {

TEST(FieldMapTest, SetAndGetInt) {
  FieldMap m;
  m.SetInt("step", 7);
  EXPECT_TRUE(m.Has("step"));
  EXPECT_EQ(m.GetInt("step"), 7);
}

TEST(FieldMapTest, SetAndGetStr) {
  FieldMap m;
  m.SetStr("op", "write");
  EXPECT_EQ(m.GetStr("op"), "write");
}

TEST(FieldMapTest, InitializerList) {
  FieldMap m{{"op", std::string("read")}, {"step", int64_t{3}}};
  EXPECT_EQ(m.GetStr("op"), "read");
  EXPECT_EQ(m.GetInt("step"), 3);
}

TEST(FieldMapTest, HasReturnsFalseForMissing) {
  FieldMap m;
  EXPECT_FALSE(m.Has("nope"));
}

TEST(FieldMapTest, ByteSizeModelsCompactEncoding) {
  // 2 bytes of field tag per entry plus the value payload (names are not stored).
  FieldMap m;
  m.SetStr("op", "write");       // 2 + 5
  m.SetInt("step", 12);          // 2 + 8
  EXPECT_EQ(m.ByteSize(), 2u + 5u + 2u + 8u);
}

TEST(FieldMapTest, EqualityIsValueBased) {
  FieldMap a{{"x", int64_t{1}}};
  FieldMap b{{"x", int64_t{1}}};
  FieldMap c{{"x", int64_t{2}}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FieldMapTest, OverwriteReplacesValue) {
  FieldMap m;
  m.SetInt("v", 1);
  m.SetInt("v", 2);
  EXPECT_EQ(m.GetInt("v"), 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FieldMapTest, IterationIsSortedByKeyRegardlessOfInsertionOrder) {
  // The flat map iterates in key order, so record encodings and replay comparisons are
  // deterministic no matter how the fields were built up.
  FieldMap forward;
  forward.SetStr("a", "1");
  forward.SetInt("m", 2);
  forward.SetStr("z", "3");
  FieldMap reverse;
  reverse.SetStr("z", "3");
  reverse.SetInt("m", 2);
  reverse.SetStr("a", "1");
  EXPECT_EQ(forward, reverse);
  std::vector<std::string> keys;
  for (const auto& [key, field] : forward) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(FieldMapTest, ManyKeysStayConsistent) {
  FieldMap m;
  for (int i = 99; i >= 0; --i) m.SetInt("k" + std::to_string(i), i);
  EXPECT_EQ(m.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m.Has("k" + std::to_string(i)));
    EXPECT_EQ(m.GetInt("k" + std::to_string(i)), i);
  }
}

TEST(ValueCodecTest, Int64RoundTrip) {
  EXPECT_EQ(DecodeInt64(EncodeInt64(0)), 0);
  EXPECT_EQ(DecodeInt64(EncodeInt64(-17)), -17);
  EXPECT_EQ(DecodeInt64(EncodeInt64(123456789012345)), 123456789012345);
}

TEST(ValueCodecTest, PadValueExtendsShortValues) {
  Value v = PadValue("abc", 10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.substr(0, 3), "abc");
}

TEST(ValueCodecTest, PadValueLeavesLongValuesAlone) {
  Value v = PadValue("abcdef", 3);
  EXPECT_EQ(v, "abcdef");
}

TEST(ValueCodecTest, PaddedIntStillDecodes) {
  Value v = PadValue(EncodeInt64(42), 256);
  EXPECT_EQ(DecodeInt64(v), 42);
}

}  // namespace
}  // namespace halfmoon
