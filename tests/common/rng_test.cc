#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace halfmoon {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double total = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) total += rng.Exponential(5.0);
  EXPECT_NEAR(total / kTrials, 5.0, 0.2);
}

TEST(RngTest, HexStringHasRequestedLengthAndAlphabet) {
  Rng rng(3);
  std::string s = rng.HexString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(RngTest, HexStringsAreDistinct) {
  Rng rng(3);
  EXPECT_NE(rng.HexString(16), rng.HexString(16));
}

}  // namespace
}  // namespace halfmoon
