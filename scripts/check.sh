#!/usr/bin/env bash
# Tier-1 verification: configure (warnings-as-errors), build everything, run the full test
# suite. This is what CI runs; run it locally before pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check}"

cmake -B "${BUILD_DIR}" -S . -DHM_WERROR=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure

# Smoke-mode bench: exercises the full-scale equivalence assertions (group commit vs
# per-request appends, coalesced propagation, zero-copy audit) at reduced scale. Runs from
# inside the build dir so the scaled-down JSON never overwrites the tracked full-scale
# BENCH_hotpath.json at the repo root (DESIGN.md §7.4).
( cd "${BUILD_DIR}" && HM_BENCH_SCALE=0.2 ./bench/bench_hotpath )

echo "check.sh: all tests passed"
