#!/usr/bin/env bash
# Tier-1 verification: configure (warnings-as-errors), build everything, run the full test
# suite. This is what CI runs; run it locally before pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check}"

cmake -B "${BUILD_DIR}" -S . -DHM_WERROR=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure

echo "check.sh: all tests passed"
