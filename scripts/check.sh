#!/usr/bin/env bash
# Tier-1 verification: configure (warnings-as-errors), build everything, run the full test
# suite. This is what CI runs; run it locally before pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check}"

# Guard against committed build trees (PR 3 accidentally tracked ~350 artifacts under
# build-review/): no tracked path may live under a build*/ directory.
if git ls-files | grep -qE '^build'; then
  echo "check.sh: FAIL — build artifacts are tracked in git:" >&2
  git ls-files | grep -E '^build' | head >&2
  exit 1
fi

cmake -B "${BUILD_DIR}" -S . -DHM_WERROR=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure

# Smoke-mode bench: exercises the full-scale equivalence assertions (group commit vs
# per-request appends, coalesced propagation, zero-copy audit) at reduced scale. Runs from
# inside the build dir so the scaled-down JSON never overwrites the tracked full-scale
# BENCH_hotpath.json at the repo root (DESIGN.md §7.4).
( cd "${BUILD_DIR}" && HM_BENCH_SCALE=0.2 ./bench/bench_hotpath )

# Shard-equivalence smoke: the same seed through a 1-shard and a 4-shard log must commit
# identical per-stream content (FNV checksums printed per protocol/workload pair). Any
# MISMATCH line — or a missing match line — fails the run.
"${BUILD_DIR}"/tests/sharded_equivalence_test \
  --gtest_filter='ShardedEquivalenceTest.ShardCountsProduceEquivalentExecutions' \
  --gtest_brief=1 | grep '^\[shards\]' | tee /dev/stderr | grep -q ' match' \
  || { echo "check.sh: FAIL — shard-equivalence checksums diverged" >&2; exit 1; }

# Parallel-mode smoke: the same seed through the single-threaded scheduler and the
# per-partition worker threads (conservative engine, DESIGN.md §10) must commit identical
# per-stream content, and repeated parallel runs must agree bit-for-bit. Any MISMATCH line —
# or a missing match line — fails the run.
"${BUILD_DIR}"/tests/parallel_cluster_test \
  --gtest_filter='ParallelClusterTest.ModesCommitIdenticalContent:ParallelClusterTest.ParallelRunsAreDeterministic' \
  --gtest_brief=1 | grep '^\[parallel\]' | tee /dev/stderr | grep -q ' match' \
  || { echo "check.sh: FAIL — parallel-mode checksums diverged" >&2; exit 1; }

# Pipeline smoke: the same seed through the serial (depth 1) and pipelined (depth 2/4/8)
# group-commit engines must commit identical per-stream content (FNV checksums printed per
# protocol/workload pair at depth 4). Any MISMATCH line — or a missing match line — fails
# the run.
"${BUILD_DIR}"/tests/sharded_equivalence_test \
  --gtest_filter='ShardedEquivalenceTest.PipelineDepthsCommitIdenticalContent' \
  --gtest_brief=1 | grep '^\[pipeline\]' | tee /dev/stderr | grep -q ' match' \
  || { echo "check.sh: FAIL — pipeline-depth checksums diverged" >&2; exit 1; }

# Faultcheck smoke: re-run the schedule-explorer suites standalone so the explored-schedule
# counts are visible in the log (ctest swallows the stdout of passing tests). Set
# HM_FAULTCHECK_FULL=1 for the exhaustive depth-2 sweep (see EXPERIMENTS.md). Runs under
# HM_PARALLEL=1 on purpose: schedule exploration/replay is single-threaded by design
# (DESIGN.md §10.4), so the sweep must print its notice and produce identical results with
# the variable set.
HM_PARALLEL=1 "${BUILD_DIR}"/tests/faultcheck_explorer_test --gtest_brief=1 | grep '^\[faultcheck\]'
HM_PARALLEL=1 "${BUILD_DIR}"/tests/faultcheck_switch_test --gtest_brief=1 | grep '^\[faultcheck\]'
"${BUILD_DIR}"/tests/faultcheck_advisor_test --gtest_brief=1 | grep '^\[faultcheck\]'
"${BUILD_DIR}"/tests/faultcheck_negative_test --gtest_brief=1 | grep -c '^\[faultcheck\]   FAIL' \
  | sed 's/^/[faultcheck] negative-control failing schedules (expected nonzero): /'

# Durability smoke (DESIGN.md §13). Leg 1: HM_DURABLE=0 must stay bit-identical to the
# pre-storage-engine implementation — the PR 4 golden tuples (events, virtual end time,
# seqnums, content FNV) re-checked with the variable explicitly off. Leg 2: the node-grain
# kill/restart sweeps (storage / sequencer / function-node kills at traced positions) must
# pass the consistency oracle with the journaled tier on; the '[faultcheck]' lines surface
# the explored-schedule counts, and 'failures=0' is enforced by the test itself.
HM_DURABLE=0 "${BUILD_DIR}"/tests/sharded_equivalence_test \
  --gtest_filter='ShardedEquivalenceTest.OneShardIsBitIdenticalToPreShardingGoldens' \
  --gtest_brief=1 \
  || { echo "check.sh: FAIL — HM_DURABLE=0 is no longer bit-identical to the goldens" >&2; exit 1; }
HM_DURABLE=1 "${BUILD_DIR}"/tests/faultcheck_node_failure_test --gtest_brief=1 \
  | grep '^\[faultcheck\]'

# Checkpoint smoke (DESIGN.md §14). Leg 1: cluster-grain recovery must actually come up
# through load-image + replay-suffix — a silent regression to full replay would still pass
# the equivalence assertions, so the 'mode=image+suffix' line is enforced here. Leg 2: the
# checkpoint-round failure sweeps (daemon crashes inside a round, node kills around one)
# must pass the consistency oracle; 'failures=0' is enforced by the test itself.
HM_DURABLE=1 HM_CHECKPOINT=1 "${BUILD_DIR}"/tests/checkpoint_recovery_test \
  --gtest_brief=1 | grep '^\[checkpoint\]' | tee /dev/stderr | grep -q 'mode=image+suffix' \
  || { echo "check.sh: FAIL — checkpointed recovery silently fell back to full replay" >&2; exit 1; }
HM_DURABLE=1 HM_CHECKPOINT=1 "${BUILD_DIR}"/tests/faultcheck_checkpoint_test --gtest_brief=1 \
  | grep '^\[faultcheck\]' | sed 's/$/ (HM_CHECKPOINT=1)/'

# Advisor smoke (DESIGN.md §11): the drift byte gate (advisor strictly below both static
# protocols), the hysteresis/dwell counters, and the HM_ADVISOR=0 golden content checksum,
# surfaced via their '[advisor]' summary lines. A missing 'win' line — the byte gate — or a
# missing pinned-checksum line fails the run. Runs only the advisor-aware binaries: the
# HM_ADVISOR default would perturb the golden timing pins of the full suite.
"${BUILD_DIR}"/tests/online_advisor_test --gtest_brief=1 | grep '^\[advisor\]' \
  | tee /dev/stderr | grep -q ' win' \
  || { echo "check.sh: FAIL — advisor drift byte gate did not report a win" >&2; exit 1; }
HM_ADVISOR=1 "${BUILD_DIR}"/tests/faultcheck_advisor_test --gtest_brief=1 \
  | grep '^\[faultcheck\]' \
  | sed 's/^\[faultcheck\]/[advisor]/;s/$/ (HM_ADVISOR=1)/'

echo "check.sh: all tests passed"
